//! The kNN schema-augmentation baseline (§6.7): encode the query caption
//! as tf-idf, find the top-10 most similar tables, and rank their headers
//! by aggregated cosine similarity; with seed headers, re-weight the
//! retrieved tables by schema overlap (Zhang & Balog [35]).

use std::collections::HashMap;
use turl_kb::tasks::{HeaderVocab, SchemaAugExample};
use turl_kb::TableSearchIndex;

/// Ranked headers plus the best supporting table (for the Table 11 case
/// study).
#[derive(Debug, Clone)]
pub struct KnnSchemaResult {
    /// Header indices (into the task's [`HeaderVocab`]), best first.
    pub ranked: Vec<usize>,
    /// Index (into the search corpus) of the most similar table.
    pub support_table: Option<usize>,
}

/// The kNN schema-augmentation baseline.
pub struct KnnSchema<'a> {
    search: &'a TableSearchIndex,
    /// Number of neighbour tables aggregated (paper: top-10).
    pub k: usize,
}

impl<'a> KnnSchema<'a> {
    /// Create over a search index built from the pre-training corpus.
    pub fn new(search: &'a TableSearchIndex, k: usize) -> Self {
        Self { search, k }
    }

    /// Rank vocabulary headers for a query.
    pub fn rank(&self, vocab: &HeaderVocab, ex: &SchemaAugExample) -> KnnSchemaResult {
        let hits = self.search.query_caption(&ex.caption, self.k);
        let seed_headers: Vec<&str> = ex.seeds.iter().map(|&s| vocab.header(s)).collect();
        let mut scores: HashMap<usize, f64> = HashMap::new();
        let mut best: Option<(usize, f64)> = None;
        for (ti, sim) in hits {
            // re-weight by seed-schema overlap when seeds are present
            let weight = if seed_headers.is_empty() {
                sim
            } else {
                let overlap = self
                    .search
                    .headers(ti)
                    .iter()
                    .filter(|h| seed_headers.contains(&h.as_str()))
                    .count() as f64;
                sim * (1.0 + overlap)
            };
            if best.map(|(_, w)| weight > w).unwrap_or(true) {
                best = Some((ti, weight));
            }
            for h in self.search.headers(ti) {
                if let Some(id) = vocab.id(h) {
                    if !ex.seeds.contains(&id) {
                        *scores.entry(id).or_insert(0.0) += weight;
                    }
                }
            }
        }
        let mut ranked: Vec<(usize, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        KnnSchemaResult {
            ranked: ranked.into_iter().map(|(h, _)| h).collect(),
            support_table: best.map(|(t, _)| t),
        }
    }

    /// MAP over a split.
    pub fn map(&self, vocab: &HeaderVocab, examples: &[SchemaAugExample]) -> f64 {
        let aps: Vec<f64> = examples
            .iter()
            .map(|ex| {
                turl_kb::tasks::metrics::average_precision(&self.rank(vocab, ex).ranked, &ex.gold)
            })
            .collect();
        turl_kb::tasks::metrics::mean_average_precision(&aps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_data::{Cell, Table};
    use turl_kb::tasks::{build_header_vocab, build_schema_augmentation};

    fn table(id: &str, caption: &str, headers: &[&str]) -> Table {
        Table {
            id: id.into(),
            page_title: String::new(),
            section_title: String::new(),
            caption: caption.into(),
            topic_entity: None,
            headers: headers.iter().map(|s| s.to_string()).collect(),
            subject_column: 0,
            rows: vec![headers
                .iter()
                .enumerate()
                .map(|(i, _)| Cell::linked(i as u32, "x"))
                .collect()],
        }
    }

    fn corpus() -> Vec<Table> {
        vec![
            table("a", "santos fc season out", &["name", "moving to", "fee"]),
            table("b", "flamengo season out", &["name", "moving to", "fee"]),
            table("c", "radio stations in manila", &["name", "format", "owner"]),
            table("d", "radio stations am list", &["name", "format", "owner"]),
        ]
    }

    #[test]
    fn knn_recovers_similar_table_schema() {
        let tables = corpus();
        let search = TableSearchIndex::build(&tables);
        let vocab = build_header_vocab(&tables, 1);
        let knn = KnnSchema::new(&search, 3);
        // a query like the football tables
        let queries = build_schema_augmentation(
            &[table("q", "palmeiras fc season out", &["name", "moving to", "fee"])],
            &vocab,
            1,
        );
        let res = knn.rank(&vocab, &queries[0]);
        assert!(!res.ranked.is_empty());
        let top: Vec<&str> = res.ranked.iter().take(2).map(|&h| vocab.header(h)).collect();
        assert!(
            top.contains(&"moving to") || top.contains(&"fee"),
            "expected football headers, got {top:?}"
        );
        assert!(res.support_table.is_some());
    }

    #[test]
    fn seeds_are_excluded_from_ranking() {
        let tables = corpus();
        let search = TableSearchIndex::build(&tables);
        let vocab = build_header_vocab(&tables, 1);
        let knn = KnnSchema::new(&search, 3);
        let queries = build_schema_augmentation(
            &[table("q", "radio stations fm list", &["name", "format", "owner"])],
            &vocab,
            1,
        );
        let res = knn.rank(&vocab, &queries[0]);
        assert!(!res.ranked.contains(&queries[0].seeds[0]));
    }

    #[test]
    fn map_in_unit_range() {
        let tables = corpus();
        let search = TableSearchIndex::build(&tables);
        let vocab = build_header_vocab(&tables, 1);
        let knn = KnnSchema::new(&search, 3);
        let queries = build_schema_augmentation(&tables, &vocab, 0);
        let map = knn.map(&vocab, &queries);
        assert!((0.0..=1.0).contains(&map));
        assert!(map > 0.5, "self-queries should score high: {map}");
    }
}
