//! Table2Vec (Deng, Zhang & Balog, SIGIR'19): Word2Vec-style skip-gram
//! embeddings trained on tables serialized into token/entity sequences.
//! The paper uses it as the shallow-representation baseline for row
//! population and (as "H2V") for header similarity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use turl_data::{EntityId, Table};

/// Skip-gram hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipGramConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window (tokens on each side).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self { dim: 32, window: 4, negatives: 4, epochs: 5, lr: 0.05, seed: 0 }
    }
}

/// Skip-gram embeddings with negative sampling over integer sequences.
#[derive(Debug, Clone)]
pub struct SkipGram {
    dim: usize,
    input: Vec<f32>, // [vocab, dim]
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl SkipGram {
    /// Train on sequences over a vocabulary of `vocab_size` items.
    pub fn train(sequences: &[Vec<usize>], vocab_size: usize, cfg: &SkipGramConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.dim;
        let mut input: Vec<f32> =
            (0..vocab_size * d).map(|_| (rng.gen::<f32>() - 0.5) / d as f32).collect();
        let mut output = vec![0.0f32; vocab_size * d];
        let mut grad = vec![0.0f32; d];
        for _ in 0..cfg.epochs {
            for seq in sequences {
                for (i, &center) in seq.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(seq.len());
                    for (j, &context) in seq.iter().enumerate().take(hi).skip(lo) {
                        if j == i {
                            continue;
                        }
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        // positive pair + negatives
                        for k in 0..=cfg.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (rng.gen_range(0..vocab_size), 0.0f32)
                            };
                            let (ci, to) = (center * d, target * d);
                            let mut dot = 0.0f32;
                            for x in 0..d {
                                dot += input[ci + x] * output[to + x];
                            }
                            let err = (sigmoid(dot) - label) * cfg.lr;
                            for x in 0..d {
                                grad[x] += err * output[to + x];
                                output[to + x] -= err * input[ci + x];
                            }
                        }
                        let ci = center * d;
                        for x in 0..d {
                            input[ci + x] -= grad[x];
                        }
                    }
                }
            }
        }
        let _ = output;
        Self { dim: d, input }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Input embedding vector of an item.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.input[id * self.dim..(id + 1) * self.dim]
    }

    /// Cosine similarity between two items.
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        let (va, vb) = (self.vector(a), self.vector(b));
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (x, y) in va.iter().zip(vb.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

/// Table2Vec for row population: entity embeddings trained on per-table
/// entity sequences, ranking candidates by mean cosine to the seeds.
#[derive(Debug, Clone)]
pub struct Table2Vec {
    sg: SkipGram,
    index_of: HashMap<EntityId, usize>,
}

impl Table2Vec {
    /// Train on the entity sequences of a table corpus.
    pub fn train(tables: &[Table], cfg: &SkipGramConfig) -> Self {
        let mut index_of: HashMap<EntityId, usize> = HashMap::new();
        let mut sequences: Vec<Vec<usize>> = Vec::with_capacity(tables.len());
        for t in tables {
            let mut seq = Vec::new();
            for (_, _, e) in t.linked_entities() {
                let next = index_of.len();
                let idx = *index_of.entry(e.id).or_insert(next);
                seq.push(idx);
            }
            if seq.len() > 1 {
                sequences.push(seq);
            }
        }
        let sg = SkipGram::train(&sequences, index_of.len().max(1), cfg);
        Self { sg, index_of }
    }

    /// Rank candidates by mean cosine similarity to the seed entities.
    /// Entities unseen in training rank last (similarity 0). Returns the
    /// candidates best-first.
    pub fn rank(&self, seeds: &[EntityId], candidates: &[EntityId]) -> Vec<EntityId> {
        let seed_idx: Vec<usize> =
            seeds.iter().filter_map(|e| self.index_of.get(e).copied()).collect();
        let mut scored: Vec<(EntityId, f32)> = candidates
            .iter()
            .map(|&c| {
                let score = match self.index_of.get(&c) {
                    Some(&ci) if !seed_idx.is_empty() => {
                        seed_idx.iter().map(|&s| self.sg.cosine(ci, s)).sum::<f32>()
                            / seed_idx.len() as f32
                    }
                    _ => 0.0,
                };
                (c, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scored.into_iter().map(|(e, _)| e).collect()
    }

    /// Whether an entity was seen during training.
    pub fn knows(&self, e: EntityId) -> bool {
        self.index_of.contains_key(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipgram_groups_cooccurring_items() {
        // two disjoint "topics": {0,1,2} and {3,4,5}
        let mut sequences = Vec::new();
        for _ in 0..60 {
            sequences.push(vec![0, 1, 2, 0, 2, 1]);
            sequences.push(vec![3, 4, 5, 5, 3, 4]);
        }
        let sg = SkipGram::train(
            &sequences,
            6,
            &SkipGramConfig { dim: 16, epochs: 3, ..Default::default() },
        );
        let within = sg.cosine(0, 1);
        let across = sg.cosine(0, 4);
        assert!(
            within > across,
            "co-occurring items should be closer: within {within} across {across}"
        );
    }

    #[test]
    fn skipgram_deterministic() {
        let seqs = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let a = SkipGram::train(&seqs, 3, &SkipGramConfig::default());
        let b = SkipGram::train(&seqs, 3, &SkipGramConfig::default());
        assert_eq!(a.vector(1), b.vector(1));
    }

    #[test]
    fn table2vec_ranks_known_cooccurring_entity_first() {
        use turl_data::Cell;
        let mk = |id: &str, ents: &[u32]| Table {
            id: id.into(),
            page_title: String::new(),
            section_title: String::new(),
            caption: String::new(),
            topic_entity: None,
            headers: vec!["a".into(), "b".into()],
            subject_column: 0,
            rows: ents
                .chunks(2)
                .map(|c| c.iter().map(|&e| Cell::linked(e, format!("e{e}"))).collect::<Vec<_>>())
                .collect(),
        };
        let mut tables = Vec::new();
        for i in 0..40 {
            tables.push(mk(&format!("x{i}"), &[1, 2, 3, 4]));
            tables.push(mk(&format!("y{i}"), &[10, 11, 12, 13]));
        }
        let t2v =
            Table2Vec::train(&tables, &SkipGramConfig { dim: 16, epochs: 4, ..Default::default() });
        let ranked = t2v.rank(&[1], &[12, 3]);
        assert_eq!(ranked[0], 3, "entity from the same cluster should rank first");
        assert!(t2v.knows(1));
        assert!(!t2v.knows(999));
    }
}
