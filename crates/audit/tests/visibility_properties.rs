//! Property-based tests for the visibility linter: matrices built by
//! `turl-data` always pass, corrupted matrices and masks always fail.

use proptest::prelude::*;
use turl_audit::{lint_additive_mask, lint_visibility, AuditError};
use turl_data::{Cell, EntityRef, LinearizeConfig, Table, TableInstance, VisibilityMatrix, Vocab};

const NEG: f32 = -1e9;

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn arb_table() -> impl Strategy<Value = Table> {
    (
        proptest::collection::vec(arb_word(), 0..5),
        proptest::collection::vec(arb_word(), 1..5),
        1usize..5,
        proptest::collection::vec(any::<bool>(), 1..25),
    )
        .prop_map(|(caption_words, headers, n_rows, link_flags)| {
            let n_cols = headers.len();
            let mut flag = link_flags.into_iter().cycle();
            let rows = (0..n_rows)
                .map(|r| {
                    (0..n_cols)
                        .map(|c| {
                            let id = (r * n_cols + c) as u32;
                            if flag.next().expect("cycled iterator never ends") {
                                Cell::linked(id, format!("ent{id}"))
                            } else {
                                Cell::text(format!("txt{id}"))
                            }
                        })
                        .collect()
                })
                .collect();
            Table {
                id: "prop".into(),
                page_title: String::new(),
                section_title: String::new(),
                caption: caption_words.join(" "),
                topic_entity: Some(EntityRef { id: 9999, mention: "topic".into() }),
                headers,
                rows,
                subject_column: 0,
            }
        })
}

fn vocab_for(t: &Table) -> Vocab {
    let mut texts = vec![t.full_caption()];
    texts.extend(t.headers.clone());
    for row in &t.rows {
        for c in row {
            texts.push(c.text.clone());
        }
    }
    texts.push("topic".into());
    Vocab::build(texts.iter().map(String::as_str), 1)
}

fn instance(t: &Table) -> TableInstance {
    TableInstance::from_table(t, &vocab_for(t), &LinearizeConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn built_matrices_always_pass_the_linter(table in arb_table()) {
        let inst = instance(&table);
        let m = VisibilityMatrix::build(&inst);
        let report = lint_visibility(&inst, &m);
        prop_assert!(report.is_ok(), "built matrix rejected: {:?}", report.err());
        let report = report.expect("checked above");
        prop_assert_eq!(report.n, inst.seq_len());

        let mask = m.to_additive_mask(NEG);
        prop_assert!(lint_additive_mask(&mask, m.n()).is_ok());
    }

    #[test]
    fn asymmetric_corruption_always_fails(table in arb_table(), pick in any::<u32>()) {
        let inst = instance(&table);
        let m = VisibilityMatrix::build(&inst);
        let n = m.n();
        prop_assume!(n >= 2);
        // Flip exactly one off-diagonal entry of the additive mask; the
        // mirror entry keeps its original value, so symmetry is broken.
        let i = (pick as usize) % n;
        let j = (i + 1 + (pick as usize / n) % (n - 1)) % n;
        prop_assert_ne!(i, j);
        let mut mask = m.to_additive_mask(NEG);
        let cell = &mut mask[i * n + j];
        *cell = if *cell == 0.0 { NEG } else { 0.0 };
        let errs = lint_additive_mask(&mask, n).expect_err("corruption must be caught");
        prop_assert!(
            errs.iter().any(|e| matches!(e, AuditError::AsymmetricVisibility { .. })),
            "expected an asymmetry error, got {errs:?}"
        );
    }

    #[test]
    fn out_of_band_values_always_fail(table in arb_table(), pick in any::<u32>(), bad in -0.9f32..0.9) {
        let inst = instance(&table);
        let m = VisibilityMatrix::build(&inst);
        let n = m.n();
        // A value that is neither 0.0 (visible) nor <= -1e8 (masked).
        let bad = if bad == 0.0 { 0.5 } else { bad };
        let idx = (pick as usize) % (n * n);
        let mut mask = m.to_additive_mask(NEG);
        mask[idx] = bad;
        let errs = lint_additive_mask(&mask, n).expect_err("bad value must be caught");
        prop_assert!(
            errs.iter().any(|e| matches!(e, AuditError::BadMaskValue { .. })),
            "expected a bad-value error, got {errs:?}"
        );
    }

    #[test]
    fn over_visible_matrices_fail_when_structure_is_nontrivial(table in arb_table()) {
        let inst = instance(&table);
        let truth = VisibilityMatrix::build(&inst);
        let n = truth.n();
        let has_masked_pair =
            (0..n).any(|i| (0..n).any(|j| !truth.visible(i, j)));
        // allow_all (the Figure 7a ablation) must be rejected whenever the
        // real §4.3 structure masks at least one pair.
        prop_assume!(has_masked_pair);
        let errs = lint_visibility(&inst, &VisibilityMatrix::allow_all(n))
            .expect_err("over-visible matrix must be caught");
        prop_assert!(
            errs.iter().any(|e| matches!(e, AuditError::OverVisible { .. })),
            "expected an over-visibility error, got {errs:?}"
        );
    }
}
