//! Soundness of the plan-level abstract interpreter: on a real seeded
//! forward pass, every concrete value of every intermediate tensor must
//! lie within the abstract range predicted for the matching IR tensor.
//!
//! The harness builds a tiny `TurlModel`, runs the same forward the
//! pre-trainer runs (encode + MLM head + MER head + summed loss),
//! aligns the autograd tape with the lowered IR node-by-node, and
//! checks containment element-by-element. Any transfer function that
//! under-approximates (a bound tighter than reality) fails here.

use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_audit::{align_with_graph, analyze_ranges, lower_model_plan};
use turl_core::{EncodedInput, EntityInput, TurlConfig, TurlModel};
use turl_nn::{Forward, ParamStore};
use turl_tensor::Tensor;

const N_WORDS: usize = 50;
const N_KB_ENTITIES: usize = 20;
const N_TOKENS: usize = 5;
const N_SEQ_ENTITIES: usize = 3;
const N_MLM: usize = 2;
const N_MER: usize = 2;
const CANDIDATES: [usize; 3] = [0, 5, 9];

/// Deterministic input covering both embedding branches: `seed` varies
/// ids, mention lengths and the visibility pattern.
fn build_input(seed: u64, use_mask: bool) -> EncodedInput {
    let s = seed as usize;
    let entities: Vec<EntityInput> = (0..N_SEQ_ENTITIES)
        .map(|i| EntityInput {
            emb_index: (i * 7 + s) % (N_KB_ENTITIES + 1),
            mention: (0..(i + s) % 3).map(|k| (i * 3 + k + s) % N_WORDS).collect(),
            type_idx: i % 3,
        })
        .collect();
    let n = N_TOKENS + N_SEQ_ENTITIES;
    let mask = use_mask.then(|| {
        let mut m = Tensor::full(vec![n, n], -1e9);
        for i in 0..n {
            for j in 0..n {
                if i == j || (i + j + s).is_multiple_of(3) {
                    m.set2(i, j, 0.0);
                }
            }
        }
        m
    });
    EncodedInput {
        token_ids: (0..N_TOKENS).map(|i| (i * 11 + s) % N_WORDS).collect(),
        token_types: (0..N_TOKENS).map(|i| i % 2).collect(),
        token_pos: (0..N_TOKENS).collect(),
        entities,
        mask,
    }
}

/// Run the pre-trainer's forward (encode, both heads, summed loss) and
/// assert every aligned tensor's concrete values sit inside the
/// abstract prediction.
fn assert_forward_within_ranges(seed: u64, use_mask: bool) -> Result<(), TestCaseError> {
    let cfg = TurlConfig { use_visibility: use_mask, ..TurlConfig::tiny(seed) };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = TurlModel::new(&mut store, &mut rng, cfg, N_WORDS, N_KB_ENTITIES);
    let input = build_input(seed, use_mask);
    let n_mention_tokens: usize = input.entities.iter().map(|e| e.mention.len()).sum();

    let plan = turl_core::audit::model_plan(
        &cfg,
        N_WORDS,
        N_KB_ENTITIES,
        N_TOKENS,
        N_SEQ_ENTITIES,
        n_mention_tokens,
        N_MLM,
        N_MER,
        CANDIDATES.len(),
    );
    let ir = lower_model_plan(&plan).expect("tiny plan lowers");
    let analysis = analyze_ranges(&ir);
    prop_assert!(
        analysis.errors.is_empty(),
        "tiny plan must analyze clean, got {:?}",
        analysis.errors
    );

    let mut f = Forward::inference(&store);
    let h = model.encode(&mut f, &store, &mut rng, &input);
    let mlm_logits = model.mlm_logits(&mut f, &store, h, &[0, 1]);
    let mlm = f.graph.cross_entropy(mlm_logits, &[3, 4]);
    let rows = [input.entity_row(0), input.entity_row(1)];
    let mer_logits = model.mer_logits(&mut f, &store, h, &rows, &CANDIDATES);
    let mer = f.graph.cross_entropy(mer_logits, &[0, 1]);
    let _loss = f.graph.add(mlm, mer);

    let pairs = align_with_graph(&ir, &f.graph).expect("IR aligns with the real tape");
    for (tid, var) in pairs {
        let node = ir.node_at(tid.index());
        let range = analysis.ranges[tid.index()];
        let concrete = f.graph.value(var);
        for (i, &v) in concrete.data().iter().enumerate() {
            prop_assert!(
                range.contains(v),
                "seed {seed} mask {use_mask}: `{}` element {i} = {v:e} escapes {range}",
                node.label
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concrete_forward_stays_within_abstract_ranges(
        seed in 0u64..1000, use_mask in any::<bool>()
    ) {
        assert_forward_within_ranges(seed, use_mask)?;
    }
}

#[test]
fn empty_mentions_are_sound_too() {
    // All-empty mentions exercise the ZeroConst lowering branch, whose
    // runtime twin is a constant-zeros leaf rather than a matmul.
    let cfg = TurlConfig { use_visibility: false, ..TurlConfig::tiny(7) };
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = TurlModel::new(&mut store, &mut rng, cfg, N_WORDS, N_KB_ENTITIES);
    let mut input = build_input(7, false);
    for e in &mut input.entities {
        e.mention.clear();
    }
    let plan = turl_core::audit::model_plan(
        &cfg,
        N_WORDS,
        N_KB_ENTITIES,
        N_TOKENS,
        N_SEQ_ENTITIES,
        0,
        N_MLM,
        N_MER,
        CANDIDATES.len(),
    );
    let ir = lower_model_plan(&plan).expect("plan with empty mentions lowers");
    let analysis = analyze_ranges(&ir);
    assert!(analysis.errors.is_empty());

    let mut f = Forward::inference(&store);
    let h = model.encode(&mut f, &store, &mut rng, &input);
    let mlm_logits = model.mlm_logits(&mut f, &store, h, &[0, 1]);
    let mlm = f.graph.cross_entropy(mlm_logits, &[3, 4]);
    let rows = [input.entity_row(0), input.entity_row(1)];
    let mer_logits = model.mer_logits(&mut f, &store, h, &rows, &CANDIDATES);
    let mer = f.graph.cross_entropy(mer_logits, &[0, 1]);
    let _loss = f.graph.add(mlm, mer);

    let pairs = align_with_graph(&ir, &f.graph).expect("empty-mention IR aligns");
    for (tid, var) in pairs {
        let range = analysis.ranges[tid.index()];
        for &v in f.graph.value(var).data() {
            assert!(range.contains(v), "{} escapes {range}", ir.node_at(tid.index()).label);
        }
    }
}
