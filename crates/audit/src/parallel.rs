//! Parallel-training parity auditor.
//!
//! The data-parallel pre-training path (`turl_tensor::pool`) is designed
//! to be *split-invariant*: every output element is owned by exactly one
//! task and accumulated in a fixed order, so gradients must not depend on
//! the worker count. This module compares the gradient state of two
//! parameter stores — one produced by a serial (1-thread) training step,
//! one by a parallel run of the identical seeded step — and reports any
//! divergence in parameter sets, gradient shapes, or gradient values.

use crate::error::AuditError;
use turl_nn::ParamStore;

/// Summary of a successful parity check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParityReport {
    /// Number of parameters compared.
    pub n_params: usize,
    /// Total scalars compared across all gradients.
    pub n_scalars: usize,
    /// Largest absolute element-wise gradient difference observed
    /// (0.0 when the parallel path is bit-identical, as designed).
    pub max_abs_diff: f32,
}

/// Compare the gradients of `serial` and `parallel` stores parameter by
/// parameter. Both stores must hold the same parameters (matched by
/// name); every gradient must match its value's shape, the two gradients
/// must agree in shape, and element-wise differ by at most `tol`
/// (pass `0.0` to require bit-identical results).
pub fn check_grad_parity(
    serial: &ParamStore,
    parallel: &ParamStore,
    tol: f32,
) -> Result<ParityReport, Vec<AuditError>> {
    let mut errors = Vec::new();
    if serial.len() != parallel.len() {
        errors.push(AuditError::BadConfig {
            field: "grad_parity.params",
            detail: format!("stores hold {} vs {} parameters", serial.len(), parallel.len()),
        });
        return Err(errors);
    }
    let mut n_scalars = 0usize;
    let mut max_abs_diff = 0.0f32;
    for id in serial.ids() {
        let name = serial.name(id);
        if parallel.name(id) != name {
            errors.push(AuditError::BadConfig {
                field: "grad_parity.names",
                detail: format!("param {id:?}: `{name}` vs `{}`", parallel.name(id)),
            });
            continue;
        }
        let (gs, gp) = (serial.grad(id), parallel.grad(id));
        let value_shape = serial.value(id).shape();
        if gs.shape() != value_shape {
            errors.push(AuditError::GradShapeMismatch {
                node: id.index(),
                value: value_shape.to_vec(),
                grad: gs.shape().to_vec(),
            });
            continue;
        }
        if gs.shape() != gp.shape() {
            errors.push(AuditError::ShapeMismatch {
                op: "grad_parity",
                shapes: vec![gs.shape().to_vec(), gp.shape().to_vec()],
                detail: format!("`{name}`: serial vs parallel gradient shapes differ"),
            });
            continue;
        }
        for (i, (a, b)) in gs.data().iter().zip(gp.data().iter()).enumerate() {
            let d = (a - b).abs();
            if d > tol || !d.is_finite() {
                errors.push(AuditError::BadConfig {
                    field: "grad_parity.values",
                    detail: format!(
                        "`{name}` element {i}: serial {a} vs parallel {b} (|Δ| = {d} > {tol})"
                    ),
                });
                break;
            }
            max_abs_diff = max_abs_diff.max(d);
        }
        n_scalars += gs.len();
    }
    if errors.is_empty() {
        Ok(ParityReport { n_params: serial.len(), n_scalars, max_abs_diff })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_tensor::Tensor;

    fn store_with_grad(g: Vec<f32>) -> ParamStore {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::zeros(vec![g.len()]));
        s.accumulate(vec![(id, Tensor::from_vec(vec![g.len()], g))]);
        s
    }

    #[test]
    fn identical_stores_pass_with_zero_tolerance() {
        let a = store_with_grad(vec![1.0, -2.0, 3.5]);
        let b = store_with_grad(vec![1.0, -2.0, 3.5]);
        let r = check_grad_parity(&a, &b, 0.0).expect("identical grads must pass");
        assert_eq!(r.n_params, 1);
        assert_eq!(r.n_scalars, 3);
        assert_eq!(r.max_abs_diff, 0.0);
    }

    #[test]
    fn diverging_values_are_reported() {
        let a = store_with_grad(vec![1.0, 2.0]);
        let b = store_with_grad(vec![1.0, 2.5]);
        let errs = check_grad_parity(&a, &b, 1e-6).unwrap_err();
        assert!(errs[0].to_string().contains("element 1"), "{}", errs[0]);
        // but a loose tolerance accepts the same pair
        assert!(check_grad_parity(&a, &b, 1.0).is_ok());
    }

    #[test]
    fn parameter_count_mismatch_is_fatal() {
        let a = store_with_grad(vec![1.0]);
        let mut b = store_with_grad(vec![1.0]);
        b.register("extra", Tensor::zeros(vec![2]));
        assert!(check_grad_parity(&a, &b, 0.0).is_err());
    }
}
