//! A typed dataflow IR for the TURL forward plan.
//!
//! [`lower_model_plan`] turns a [`ModelPlan`](crate::ModelPlan) into an
//! explicit op graph: every node is one tensor (a [`SourceKind`] input or
//! the output of an [`OpKind`] op), edges are [`TensorId`]s, and each node
//! carries its inferred shape plus a human-readable label. The lowering
//! mirrors `TurlModel`'s autograd tape **op for op** — same ops, same
//! order — so one IR serves three analyses at once:
//!
//! * value-range abstract interpretation ([`crate::range`]),
//! * buffer-liveness / arena planning ([`crate::liveness`]),
//! * drift detection against the real runtime tape ([`align_with_graph`]).
//!
//! Shape validation is delegated to the existing [`ShapeFlow`] checker:
//! the builder keeps a shadow `ShapeFlow` tape in lock-step (IR node `i`
//! is shape-flow var `i`), so every IR op enforces exactly the
//! precondition the runtime op asserts.

use crate::error::AuditError;
use crate::plan::{ModelPlan, PlanNumerics};
use crate::shape::{SVar, ShapeFlow};
use turl_tensor::Graph;

/// Handle to one tensor (node) in an [`Ir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

impl TensorId {
    /// Position of this tensor on the IR tape (topological order).
    pub fn index(self) -> usize {
        self.0
    }

    /// Handle to the tensor at a tape position. The caller must take the
    /// index from the same [`Ir`] it resolves the handle against (the
    /// forward-plan compiler uses this to rebuild ids for its schedule).
    pub fn from_index(i: usize) -> Self {
        TensorId(i)
    }
}

/// What kind of input a [`OpKind::Source`] node is — determines its
/// initialization-derived value range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceKind {
    /// An embedding table (`N(0, 0.02)` init, hard-bounded by the
    /// Box–Muller sampler; see `turl_tensor::normal_init_bound`).
    Table,
    /// A linear weight matrix stored `[fan_in, fan_out]`, Kaiming-uniform
    /// in `[-1/sqrt(fan_in), 1/sqrt(fan_in)]`.
    Weight {
        /// Input dimension of the layer (the sampler's fan-in).
        fan_in: usize,
    },
    /// A zero-initialized bias vector.
    Bias,
    /// A ones-initialized layer-norm scale.
    Gamma,
    /// A zero-initialized layer-norm shift.
    Beta,
    /// The additive `[n, n]` visibility mask: `0` for visible pairs,
    /// `mask_penalty` for masked ones.
    Mask,
    /// The mention-averaging matrix of Eqn. 3: rows of `1/len` weights
    /// (all-zero rows for mention-less entities).
    AvgMatrix,
    /// An exactly-zero constant tensor.
    ZeroConst,
}

/// The op that produced a tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A graph input (parameter, constant, or mask) — no op inputs.
    Source(SourceKind),
    /// Row gather (`index_select0`).
    Gather,
    /// `[m, k] · [k, n]`.
    MatMul,
    /// `[m, k] · [n, k]ᵀ`.
    MatMulNT,
    /// Batched `[b, m, k] · [b, k, n]`.
    Bmm,
    /// Batched `[b, m, k] · [b, n, k]ᵀ`.
    BmmNT,
    /// Broadcasting elementwise sum.
    Add,
    /// Additive attention-mask application (an `add` in the runtime, kept
    /// distinct so the analyses can treat `-inf` logits as intentional).
    Mask,
    /// Multiplication by a compile-time constant.
    Scale {
        /// The constant factor.
        factor: f64,
    },
    /// Tanh-approximated GELU.
    Gelu,
    /// Stabilized softmax over the last axis.
    Softmax,
    /// Layer normalization with affine parameters; inputs are
    /// `[x, gamma, beta]`.
    LayerNorm {
        /// Variance-stabilizing epsilon the runtime layer was built with.
        eps: f64,
    },
    /// Column-wise concatenation.
    ConcatCols,
    /// Row-wise concatenation.
    ConcatRows,
    /// Element-preserving reshape.
    Reshape,
    /// Axis permutation.
    Permute,
    /// Fused softmax + NLL loss over `[n, c]` logits, yielding `[1]`.
    CrossEntropy,
}

impl OpKind {
    /// Short op name for error messages and plan listings.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Source(_) => "source",
            OpKind::Gather => "gather",
            OpKind::MatMul => "matmul",
            OpKind::MatMulNT => "matmul_nt",
            OpKind::Bmm => "bmm",
            OpKind::BmmNT => "bmm_nt",
            OpKind::Add => "add",
            OpKind::Mask => "mask",
            OpKind::Scale { .. } => "scale",
            OpKind::Gelu => "gelu",
            OpKind::Softmax => "softmax",
            OpKind::LayerNorm { .. } => "layer_norm",
            OpKind::ConcatCols => "concat_cols",
            OpKind::ConcatRows => "concat_rows",
            OpKind::Reshape => "reshape",
            OpKind::Permute => "permute",
            OpKind::CrossEntropy => "cross_entropy",
        }
    }

    /// Whether this node is a graph input rather than a computed op.
    pub fn is_source(&self) -> bool {
        matches!(self, OpKind::Source(_))
    }
}

/// One tensor in the IR: the op that produced it, its operands, its
/// inferred shape, and a stable human-readable label.
#[derive(Debug, Clone, PartialEq)]
pub struct IrNode {
    /// Producing op.
    pub kind: OpKind,
    /// Operand tensors, in op order (empty for sources).
    pub inputs: Vec<TensorId>,
    /// Inferred output shape.
    pub shape: Vec<usize>,
    /// Human-readable name (e.g. `block0.att.scores`).
    pub label: String,
}

impl IrNode {
    /// Number of elements in this tensor.
    pub fn elements(&self) -> usize {
        self.shape.iter().product()
    }
}

/// An op-graph lowering of one forward plan, in topological order.
#[derive(Debug, Clone)]
pub struct Ir {
    nodes: Vec<IrNode>,
    /// Numeric metadata (init bounds, eps, mask penalty) the value-range
    /// analysis interprets the graph under.
    pub numerics: PlanNumerics,
}

impl Ir {
    /// Number of nodes (sources + ops).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the IR holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node at a tape position.
    pub fn node_at(&self, id: usize) -> &IrNode {
        &self.nodes[id]
    }

    /// All nodes in tape order.
    pub fn nodes(&self) -> &[IrNode] {
        &self.nodes
    }

    /// Ids of all non-source (computed) nodes, in tape order.
    pub fn op_ids(&self) -> impl Iterator<Item = TensorId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| !n.kind.is_source()).map(|(i, _)| TensorId(i))
    }

    /// Largest single-tensor element count anywhere in the graph.
    pub fn peak_elements(&self) -> usize {
        self.nodes.iter().map(IrNode::elements).max().unwrap_or(0)
    }
}

/// Builds an [`Ir`] while shadowing every op on a [`ShapeFlow`] tape, so
/// each IR node gets exactly the shape validation its runtime twin would
/// assert. IR node `i` always corresponds to shape-flow var `i`.
pub struct IrBuilder {
    nodes: Vec<IrNode>,
    flow: ShapeFlow,
}

impl Default for IrBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl IrBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), flow: ShapeFlow::new() }
    }

    /// Finish, attaching the numeric metadata the analyses interpret
    /// the graph under.
    pub fn finish(self, numerics: PlanNumerics) -> Ir {
        Ir { nodes: self.nodes, numerics }
    }

    fn svar(&self, t: TensorId) -> SVar {
        // The builder records flow ops and IR nodes in lock-step, so the
        // tape indices coincide by construction.
        self.flow.var_at(t.0)
    }

    fn record(&mut self, v: SVar, kind: OpKind, inputs: Vec<TensorId>, label: &str) -> TensorId {
        let shape = self.flow.shape(v).to_vec();
        debug_assert_eq!(self.nodes.len(), self.flow.n_ops() - 1, "IR/flow tapes diverged");
        self.nodes.push(IrNode { kind, inputs, shape, label: label.to_string() });
        TensorId(self.nodes.len() - 1)
    }

    /// Introduce an input tensor.
    pub fn source(&mut self, kind: SourceKind, shape: Vec<usize>, label: &str) -> TensorId {
        let v = self.flow.source(shape);
        self.record(v, OpKind::Source(kind), Vec::new(), label)
    }

    /// Gather `indices` rows of `table`.
    pub fn gather(
        &mut self,
        table: TensorId,
        indices: &[usize],
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.index_select0(self.svar(table), indices)?;
        Ok(self.record(v, OpKind::Gather, vec![table], label))
    }

    /// Broadcasting elementwise sum.
    pub fn add(&mut self, a: TensorId, b: TensorId, label: &str) -> Result<TensorId, AuditError> {
        let v = self.flow.add(self.svar(a), self.svar(b))?;
        Ok(self.record(v, OpKind::Add, vec![a, b], label))
    }

    /// Apply an additive attention mask (an `add` at runtime, recorded as
    /// a distinct op so analyses can exempt intentional `-inf` logits).
    pub fn mask(
        &mut self,
        scores: TensorId,
        mask: TensorId,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.add(self.svar(scores), self.svar(mask))?;
        Ok(self.record(v, OpKind::Mask, vec![scores, mask], label))
    }

    /// `[m, k] · [k, n]`.
    pub fn matmul(
        &mut self,
        a: TensorId,
        b: TensorId,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.matmul(self.svar(a), self.svar(b))?;
        Ok(self.record(v, OpKind::MatMul, vec![a, b], label))
    }

    /// `[m, k] · [n, k]ᵀ`.
    pub fn matmul_nt(
        &mut self,
        a: TensorId,
        b: TensorId,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.matmul_nt(self.svar(a), self.svar(b))?;
        Ok(self.record(v, OpKind::MatMulNT, vec![a, b], label))
    }

    /// Batched `[b, m, k] · [b, k, n]`.
    pub fn bmm(&mut self, a: TensorId, b: TensorId, label: &str) -> Result<TensorId, AuditError> {
        let v = self.flow.bmm(self.svar(a), self.svar(b))?;
        Ok(self.record(v, OpKind::Bmm, vec![a, b], label))
    }

    /// Batched `[b, m, k] · [b, n, k]ᵀ`.
    pub fn bmm_nt(
        &mut self,
        a: TensorId,
        b: TensorId,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.bmm_nt(self.svar(a), self.svar(b))?;
        Ok(self.record(v, OpKind::BmmNT, vec![a, b], label))
    }

    /// Multiply by a constant.
    pub fn scale(&mut self, a: TensorId, factor: f64, label: &str) -> TensorId {
        let v = self.flow.unary("scale", self.svar(a));
        self.record(v, OpKind::Scale { factor }, vec![a], label)
    }

    /// Tanh-approximated GELU.
    pub fn gelu(&mut self, a: TensorId, label: &str) -> TensorId {
        let v = self.flow.unary("gelu", self.svar(a));
        self.record(v, OpKind::Gelu, vec![a], label)
    }

    /// Softmax over the last axis.
    pub fn softmax(&mut self, a: TensorId, label: &str) -> Result<TensorId, AuditError> {
        let v = self.flow.softmax_last(self.svar(a))?;
        Ok(self.record(v, OpKind::Softmax, vec![a], label))
    }

    /// Layer norm of `x` with affine `gamma`/`beta` and the runtime eps.
    pub fn layer_norm(
        &mut self,
        x: TensorId,
        gamma: TensorId,
        beta: TensorId,
        eps: f64,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.layer_norm(self.svar(x), self.svar(gamma), self.svar(beta))?;
        Ok(self.record(v, OpKind::LayerNorm { eps }, vec![x, gamma, beta], label))
    }

    /// Column-wise concatenation.
    pub fn concat_cols(&mut self, parts: &[TensorId], label: &str) -> Result<TensorId, AuditError> {
        let svars: Vec<SVar> = parts.iter().map(|&p| self.svar(p)).collect();
        let v = self.flow.concat_cols(&svars)?;
        Ok(self.record(v, OpKind::ConcatCols, parts.to_vec(), label))
    }

    /// Row-wise concatenation.
    pub fn concat_rows(&mut self, parts: &[TensorId], label: &str) -> Result<TensorId, AuditError> {
        let svars: Vec<SVar> = parts.iter().map(|&p| self.svar(p)).collect();
        let v = self.flow.concat_rows(&svars)?;
        Ok(self.record(v, OpKind::ConcatRows, parts.to_vec(), label))
    }

    /// Element-preserving reshape.
    pub fn reshape(
        &mut self,
        a: TensorId,
        shape: Vec<usize>,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.reshape(self.svar(a), shape)?;
        Ok(self.record(v, OpKind::Reshape, vec![a], label))
    }

    /// Axis permutation.
    pub fn permute(
        &mut self,
        a: TensorId,
        axes: &[usize],
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.permute(self.svar(a), axes)?;
        Ok(self.record(v, OpKind::Permute, vec![a], label))
    }

    /// Cross-entropy over `[n, c]` logits.
    pub fn cross_entropy(
        &mut self,
        logits: TensorId,
        n_targets: usize,
        max_target: Option<usize>,
        label: &str,
    ) -> Result<TensorId, AuditError> {
        let v = self.flow.cross_entropy(self.svar(logits), n_targets, max_target)?;
        Ok(self.record(v, OpKind::CrossEntropy, vec![logits], label))
    }

    // ------------------------------------------------------------------
    // Composite helpers (each expands into the primitives above, matching
    // the runtime layer's op order exactly)
    // ------------------------------------------------------------------

    /// Mirror of `turl_nn::Linear::forward`: fresh weight + bias sources,
    /// then `matmul` + `add`.
    fn linear(
        &mut self,
        x: TensorId,
        d_in: usize,
        d_out: usize,
        name: &str,
    ) -> Result<TensorId, AuditError> {
        let w = self.source(
            SourceKind::Weight { fan_in: d_in },
            vec![d_in, d_out],
            &format!("{name}.weight"),
        );
        let b = self.source(SourceKind::Bias, vec![d_out], &format!("{name}.bias"));
        let y = self.matmul(x, w, &format!("{name}.matmul"))?;
        self.add(y, b, &format!("{name}.out"))
    }

    /// Mirror of `turl_nn::LayerNorm::forward` with fresh affine sources.
    fn ln(&mut self, x: TensorId, d: usize, eps: f64, name: &str) -> Result<TensorId, AuditError> {
        let g = self.source(SourceKind::Gamma, vec![d], &format!("{name}.gamma"));
        let b = self.source(SourceKind::Beta, vec![d], &format!("{name}.beta"));
        self.layer_norm(x, g, b, eps, &format!("{name}.out"))
    }
}

/// Lower a [`ModelPlan`] into the explicit op graph of one full forward
/// pass: embedding (Eqns. 1–3), `N` visibility-masked Transformer blocks
/// (§4.3), the MLM/MER heads (Eqns. 5–6) with their cross-entropy losses,
/// and the final loss sum when both heads are active.
///
/// The lowering mirrors `TurlModel`'s autograd tape op for op — the same
/// ops in the same order, including the runtime's quirks (the mention
/// gather is recorded even when no entity has mention tokens; q/k/v are
/// all projected before any head split) — so [`align_with_graph`] can
/// pair every computed IR tensor with its runtime twin.
pub fn lower_model_plan(plan: &ModelPlan) -> Result<Ir, AuditError> {
    crate::plan::check_plan_fields(plan)?;
    let p = *plan;
    let d = p.d_model;
    let n = p.n_tokens + p.n_seq_entities;
    let dh = d / p.n_heads;
    let mut b = IrBuilder::new();

    // Embedding tables, bound once (the runtime binds each parameter leaf
    // once per pass and reuses the Var).
    let word_emb = b.source(SourceKind::Table, vec![p.n_words, d], "word_emb");
    let ent_emb = b.source(SourceKind::Table, vec![p.n_entities + 1, d], "ent_emb");

    // ---- Embedding layer (Eqns. 1–3) --------------------------------
    let mut parts = Vec::new();
    if p.n_tokens > 0 {
        let token_type_emb = b.source(SourceKind::Table, vec![2, d], "token_type_emb");
        let pos_emb = b.source(SourceKind::Table, vec![p.max_position, d], "pos_emb");
        // Worst-case gather indices exercise each table's upper bound;
        // the runtime clamps positions to max_position - 1.
        let w = b.gather(word_emb, &vec![p.n_words - 1; p.n_tokens], "embed.words")?;
        let t = b.gather(token_type_emb, &vec![1; p.n_tokens], "embed.token_types")?;
        let pos = b.gather(pos_emb, &vec![p.max_position - 1; p.n_tokens], "embed.positions")?;
        let wt = b.add(w, t, "embed.word_type")?;
        parts.push(b.add(wt, pos, "embed.tokens")?);
    }
    if p.n_seq_entities > 0 {
        let ee = b.gather(ent_emb, &vec![p.n_entities; p.n_seq_entities], "embed.entities")?;
        // `TurlModel::mention_means` gathers the flattened mention tokens
        // *before* its empty-mentions early return, so the gather node is
        // on the runtime tape even when it is `[0, d]`.
        let rows =
            b.gather(word_emb, &vec![p.n_words - 1; p.n_mention_tokens], "embed.mention_words")?;
        let em = if p.n_mention_tokens > 0 {
            let avg = b.source(
                SourceKind::AvgMatrix,
                vec![p.n_seq_entities, p.n_mention_tokens],
                "embed.mention_avg",
            );
            b.matmul(avg, rows, "embed.mention_means")?
        } else {
            b.source(SourceKind::ZeroConst, vec![p.n_seq_entities, d], "embed.mention_zeros")
        };
        let cat = b.concat_cols(&[ee, em], "embed.ent_cat")?;
        let fused = b.linear(cat, 2 * d, d, "fuse")?;
        let ent_type_emb = b.source(SourceKind::Table, vec![3, d], "ent_type_emb");
        let te = b.gather(ent_type_emb, &vec![2; p.n_seq_entities], "embed.ent_types")?;
        parts.push(b.add(fused, te, "embed.ents")?);
    }
    let x = if parts.len() == 1 { parts[0] } else { b.concat_rows(&parts, "embed.seq")? };
    let mut h = b.ln(x, d, p.numerics.ln_eps, "ln_embed")?;

    // ---- Encoder stack (§4.3) ---------------------------------------
    // One shared mask source, matching the runtime's single shared
    // constant node per pass.
    let mask = p.use_visibility.then(|| b.source(SourceKind::Mask, vec![n, n], "visibility_mask"));
    let inv_sqrt_dh = f64::from(1.0f32 / (dh as f32).sqrt());
    for i in 0..p.n_layers {
        let blk = format!("block{i}");
        // q/k/v are all projected before any head split (runtime order).
        let q = b.linear(h, d, d, &format!("{blk}.att.wq"))?;
        let k = b.linear(h, d, d, &format!("{blk}.att.wk"))?;
        let v = b.linear(h, d, d, &format!("{blk}.att.wv"))?;
        let mut heads = [q, k, v];
        for (t, nm) in heads.iter_mut().zip(["q", "k", "v"]) {
            let r = b.reshape(*t, vec![n, p.n_heads, dh], &format!("{blk}.att.{nm}_split"))?;
            *t = b.permute(r, &[1, 0, 2], &format!("{blk}.att.{nm}_heads"))?;
        }
        let scores = b.bmm_nt(heads[0], heads[1], &format!("{blk}.att.scores"))?;
        let scaled = b.scale(scores, inv_sqrt_dh, &format!("{blk}.att.scaled"));
        let logits = match mask {
            Some(m) => b.mask(scaled, m, &format!("{blk}.att.masked"))?,
            None => scaled,
        };
        let probs = b.softmax(logits, &format!("{blk}.att.probs"))?;
        let ctx = b.bmm(probs, heads[2], &format!("{blk}.att.ctx"))?;
        let merged = b.permute(ctx, &[1, 0, 2], &format!("{blk}.att.merged"))?;
        let flat = b.reshape(merged, vec![n, d], &format!("{blk}.att.flat"))?;
        let att = b.linear(flat, d, d, &format!("{blk}.att.wo"))?;
        let res1 = b.add(h, att, &format!("{blk}.res1"))?;
        let h1 = b.ln(res1, d, p.numerics.ln_eps, &format!("{blk}.ln1"))?;
        let ff1 = b.linear(h1, d, p.d_intermediate, &format!("{blk}.ffn.lin1"))?;
        let act = b.gelu(ff1, &format!("{blk}.ffn.gelu"));
        let ff2 = b.linear(act, p.d_intermediate, d, &format!("{blk}.ffn.lin2"))?;
        let res2 = b.add(h1, ff2, &format!("{blk}.res2"))?;
        h = b.ln(res2, d, p.numerics.ln_eps, &format!("{blk}.ln2"))?;
    }

    // ---- Pre-training heads (Eqns. 5–6) -----------------------------
    let mut losses = Vec::new();
    if p.n_mlm_targets > 0 {
        // MLM rows index token positions (< n_tokens ≤ n).
        let sel = b.gather(h, &vec![p.n_tokens - 1; p.n_mlm_targets], "mlm.rows")?;
        let proj = b.linear(sel, d, d, "mlm.proj")?;
        let logits = b.matmul_nt(proj, word_emb, "mlm.logits")?;
        losses.push(b.cross_entropy(logits, p.n_mlm_targets, Some(p.n_words - 1), "mlm.loss")?);
    }
    if p.n_mer_targets > 0 {
        // MER rows index entity positions (≥ n_tokens, < n).
        let sel = b.gather(h, &vec![n - 1; p.n_mer_targets], "mer.rows")?;
        let proj = b.linear(sel, d, d, "mer.proj")?;
        // Candidate ids are shifted by one past the [MASK] row.
        let cand = b.gather(ent_emb, &vec![p.n_entities; p.n_candidates], "mer.candidates")?;
        let logits = b.matmul_nt(proj, cand, "mer.logits")?;
        losses.push(b.cross_entropy(
            logits,
            p.n_mer_targets,
            Some(p.n_candidates - 1),
            "mer.loss",
        )?);
    }
    if losses.len() == 2 {
        // The trainer sums the head losses into one backward root.
        b.add(losses[0], losses[1], "loss")?;
    }

    Ok(b.finish(p.numerics))
}

/// Pair every computed IR tensor with its twin on a real autograd tape.
///
/// Sources are excluded on both sides (IR `Source` nodes vs. graph
/// leaves): parameter binding order and constant count legitimately
/// differ between the symbolic plan and a concrete pass. What must match
/// — op for op, in tape order — are the *computed* nodes: their count and
/// every shape. A divergence means the `TurlConfig → ModelPlan` adapter
/// or the lowering has drifted from the model, and is reported as a
/// typed [`AuditError::ShapeMismatch`] naming the first mismatched pair.
pub fn align_with_graph(
    ir: &Ir,
    graph: &Graph,
) -> Result<Vec<(TensorId, turl_tensor::Var)>, AuditError> {
    let ir_ops: Vec<TensorId> = ir.op_ids().collect();
    let graph_ops: Vec<turl_tensor::Var> = graph.vars().filter(|&v| !graph.is_leaf(v)).collect();
    if ir_ops.len() != graph_ops.len() {
        return Err(AuditError::ShapeMismatch {
            op: "ir_alignment",
            shapes: Vec::new(),
            detail: format!(
                "IR lowers to {} computed ops but the runtime tape recorded {}",
                ir_ops.len(),
                graph_ops.len()
            ),
        });
    }
    for (&t, &v) in ir_ops.iter().zip(&graph_ops) {
        let node = ir.node_at(t.index());
        let got = graph.value(v).shape();
        if node.shape != got {
            return Err(AuditError::ShapeMismatch {
                op: "ir_alignment",
                shapes: vec![node.shape.clone(), got.to_vec()],
                detail: format!(
                    "IR `{}` ({}) has shape {:?} but runtime node {} has {:?}",
                    node.label,
                    node.kind.name(),
                    node.shape,
                    v.index(),
                    got
                ),
            });
        }
    }
    Ok(ir_ops.into_iter().zip(graph_ops).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_plan() -> ModelPlan {
        ModelPlan {
            n_layers: 4,
            d_model: 312,
            d_intermediate: 1200,
            n_heads: 12,
            n_words: 30522,
            n_entities: 926135,
            max_position: 64,
            n_tokens: 24,
            n_seq_entities: 20,
            n_mention_tokens: 40,
            use_visibility: true,
            n_mlm_targets: 5,
            n_mer_targets: 12,
            n_candidates: 64,
            numerics: PlanNumerics::default(),
        }
    }

    #[test]
    fn lowering_produces_a_typed_tape() {
        let ir = lower_model_plan(&paper_plan()).expect("paper plan lowers");
        assert!(ir.len() > 100, "4 blocks plus embedding and heads: {} nodes", ir.len());
        // The final node is the summed loss, scalar-shaped.
        let last = ir.node_at(ir.len() - 1);
        assert_eq!(last.kind, OpKind::Add);
        assert_eq!(last.shape, vec![1]);
        // Exactly one masked-softmax chain per block.
        let softmaxes = ir.nodes().iter().filter(|n| matches!(n.kind, OpKind::Softmax)).count();
        assert_eq!(softmaxes, 4);
        let masks = ir.nodes().iter().filter(|n| matches!(n.kind, OpKind::Mask)).count();
        assert_eq!(masks, 4);
    }

    #[test]
    fn every_input_precedes_its_consumer() {
        let ir = lower_model_plan(&paper_plan()).expect("paper plan lowers");
        for (i, node) in ir.nodes().iter().enumerate() {
            for inp in &node.inputs {
                assert!(inp.index() < i, "node {i} `{}` reads a later tensor", node.label);
            }
        }
    }

    #[test]
    fn empty_mentions_still_record_the_gather() {
        let plan = ModelPlan { n_mention_tokens: 0, ..paper_plan() };
        let ir = lower_model_plan(&plan).expect("plan lowers");
        let gather = ir
            .nodes()
            .iter()
            .find(|n| n.label == "embed.mention_words")
            .expect("mention gather is always on the tape (runtime records it too)");
        assert_eq!(gather.shape, vec![0, 312]);
        assert!(ir.nodes().iter().any(|n| n.label == "embed.mention_zeros"));
    }

    #[test]
    fn unmasked_plan_has_no_mask_nodes() {
        let plan = ModelPlan { use_visibility: false, ..paper_plan() };
        let ir = lower_model_plan(&plan).expect("plan lowers");
        assert!(!ir.nodes().iter().any(|n| matches!(n.kind, OpKind::Mask)));
        assert!(!ir.nodes().iter().any(|n| matches!(n.kind, OpKind::Source(SourceKind::Mask))));
    }

    #[test]
    fn bad_head_count_fails_with_typed_error() {
        let plan = ModelPlan { n_heads: 5, ..paper_plan() };
        assert!(matches!(
            lower_model_plan(&plan),
            Err(AuditError::BadConfig { field: "d_model % n_heads", .. })
        ));
    }
}
