//! Buffer-liveness analysis and arena planning over a lowered IR.
//!
//! Every computed tensor in an [`Ir`] is live from the op that defines it
//! (first def) to the last op that reads it (last use). Two tensors whose
//! live ranges do not overlap can share one buffer; [`plan_arena`]
//! exploits that with a greedy best-fit assignment and reports the result
//! as an [`ArenaPlan`]: how many distinct slots a single pre-allocated
//! arena needs, their sizes, and the reuse factor — the honest peak-memory
//! number (`peak_bytes`) that `peak_elements` alone obscured.
//!
//! Source nodes (parameters, constants, the mask) are excluded: they are
//! owned by the parameter store, not the per-step arena. This is exactly
//! the artifact a fused forward-plan executor consumes to run one forward
//! pass in a fixed allocation.

use crate::ir::{Ir, TensorId};

/// Bytes per element of the runtime's only dtype.
const BYTES_PER_ELEM: usize = 4; // f32

/// One buffer in the planned arena and the tensors that time-share it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaSlot {
    /// Slot capacity in bytes (the largest tenant rounds it up).
    pub bytes: usize,
    /// Tensors assigned to this slot, in definition order (their live
    /// ranges are pairwise disjoint by construction).
    pub tenants: Vec<TensorId>,
}

/// A complete arena assignment for one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaPlan {
    /// Planned buffers; one allocation each, reused across tenants.
    pub slots: Vec<ArenaSlot>,
    /// Total arena size: the sum of slot capacities. This is the peak
    /// intermediate memory of the pass, in bytes.
    pub peak_bytes: usize,
    /// Sum of every computed tensor's size — what a no-reuse executor
    /// (one fresh allocation per op, all held to the end) would need.
    pub total_bytes: usize,
    /// `total_bytes / peak_bytes`: how many times over the arena is
    /// reused. Greater than 1 whenever any lifetime ends early.
    pub reuse_factor: f64,
}

/// Live range of one computed tensor, in IR tape indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// The tensor.
    pub id: TensorId,
    /// Index of the defining op.
    pub first_def: usize,
    /// Index of the last reader. Tensors nothing reads are outputs and
    /// stay live to the end of the tape (`ir.len()`).
    pub last_use: usize,
}

/// Compute first-def/last-use for every computed (non-source) tensor.
pub fn live_ranges(ir: &Ir) -> Vec<LiveRange> {
    // last reader per tape position; sources are excluded below.
    let mut last_use = vec![0usize; ir.len()];
    for (i, node) in ir.nodes().iter().enumerate() {
        for inp in &node.inputs {
            last_use[inp.index()] = i;
        }
    }
    ir.op_ids()
        .map(|id| {
            let i = id.index();
            LiveRange {
                id,
                first_def: i,
                // Unread tensors are pass outputs: conservatively live to
                // the end so the arena never recycles a result the caller
                // still holds.
                last_use: if last_use[i] == 0 { ir.len() } else { last_use[i] },
            }
        })
        .collect()
}

/// A buffer request for the generic planner: `bytes` of storage live
/// over `[first_def, last_use]` (tape indices, inclusive on both ends
/// for conflict purposes — two requests may share a slot only when one's
/// `last_use` lies strictly before the other's `first_def`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaRequest {
    /// Storage needed, in bytes. Zero-byte requests get no slot.
    pub bytes: usize,
    /// Tape index at which the buffer is written.
    pub first_def: usize,
    /// Tape index of the last read (or the end of the tape for outputs).
    pub last_use: usize,
}

/// Concrete arena layout: a byte offset per request into one flat
/// allocation of `peak_bytes`. Produced by [`plan_layout`]; consumed by
/// the forward-plan executor, which carves its single arena buffer at
/// these offsets instead of allocating per op.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaLayout {
    /// Byte offset of each request in input order; `None` for zero-byte
    /// requests (they need no storage).
    pub offsets: Vec<Option<usize>>,
    /// Slot index of each request in input order (parallel to `offsets`).
    pub slot_of: Vec<Option<usize>>,
    /// Capacity of each slot in bytes, in slot order.
    pub slot_bytes: Vec<usize>,
    /// Total arena size — the sum of slot capacities.
    pub peak_bytes: usize,
    /// Sum of all request sizes (the no-reuse baseline).
    pub total_bytes: usize,
    /// `total_bytes / peak_bytes`; 1.0 for an empty plan.
    pub reuse_factor: f64,
}

/// Greedy best-fit slot assignment over explicit buffer requests.
///
/// Requests must arrive in definition order (nondecreasing `first_def`).
/// Each is placed in the smallest already-free slot that fits — a slot is
/// free once its current tenant's `last_use` lies strictly before the new
/// request's `first_def` — or a new slot is opened sized to the request.
/// Slots never grow, so every slot's byte range `[offset, offset+bytes)`
/// is fixed and two requests alias only if they share a slot, which the
/// placement rule forbids for overlapping lifetimes. That disjointness is
/// the executor's aliasing guarantee.
pub fn plan_layout(requests: &[ArenaRequest]) -> ArenaLayout {
    struct Slot {
        bytes: usize,
        free_at: usize, // last_use of current tenant
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut slot_of: Vec<Option<usize>> = Vec::with_capacity(requests.len());
    let mut total_bytes = 0usize;

    for req in requests {
        if req.bytes == 0 {
            slot_of.push(None);
            continue;
        }
        total_bytes += req.bytes;
        // Best fit: among free slots large enough, take the smallest; a
        // smallest-too-small slot is never grown (growing would invalidate
        // the peak accounting of its earlier tenants' neighbors).
        let best = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.free_at < req.first_def && s.bytes >= req.bytes)
            .min_by_key(|(_, s)| s.bytes)
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                slots[i].free_at = req.last_use;
                slot_of.push(Some(i));
            }
            None => {
                slots.push(Slot { bytes: req.bytes, free_at: req.last_use });
                slot_of.push(Some(slots.len() - 1));
            }
        }
    }

    // Slot offsets are the prefix sums of the (final, fixed) slot sizes.
    let slot_bytes: Vec<usize> = slots.iter().map(|s| s.bytes).collect();
    let mut slot_offset = Vec::with_capacity(slot_bytes.len());
    let mut acc = 0usize;
    for &b in &slot_bytes {
        slot_offset.push(acc);
        acc += b;
    }
    let peak_bytes = acc;
    let offsets = slot_of.iter().map(|s| s.map(|i| slot_offset[i])).collect();
    ArenaLayout {
        offsets,
        slot_of,
        slot_bytes,
        peak_bytes,
        total_bytes,
        reuse_factor: if peak_bytes == 0 { 1.0 } else { total_bytes as f64 / peak_bytes as f64 },
    }
}

/// Greedy best-fit arena assignment over the IR's live ranges.
///
/// Tensors are visited in definition order (tape order). Each is placed
/// in the smallest already-free slot that fits it — a slot is free once
/// its current tenant's last use lies strictly before the new tensor's
/// def — or a new slot is opened. Zero-element tensors need no storage
/// and are skipped. The placement itself is delegated to [`plan_layout`],
/// which the forward-plan executor also uses for its step schedule.
pub fn plan_arena(ir: &Ir) -> ArenaPlan {
    let ranges = live_ranges(ir);
    let requests: Vec<ArenaRequest> = ranges
        .iter()
        .map(|r| ArenaRequest {
            bytes: ir.node_at(r.id.index()).elements() * BYTES_PER_ELEM,
            first_def: r.first_def,
            last_use: r.last_use,
        })
        .collect();
    let layout = plan_layout(&requests);

    let mut slots: Vec<ArenaSlot> =
        layout.slot_bytes.iter().map(|&bytes| ArenaSlot { bytes, tenants: Vec::new() }).collect();
    for (range, slot) in ranges.iter().zip(layout.slot_of.iter()) {
        if let Some(i) = *slot {
            slots[i].tenants.push(range.id);
        }
    }
    ArenaPlan {
        slots,
        peak_bytes: layout.peak_bytes,
        total_bytes: layout.total_bytes,
        reuse_factor: layout.reuse_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrBuilder, SourceKind};
    use crate::plan::PlanNumerics;

    /// A straight a → b → c → d chain: each tensor dies as soon as its
    /// single consumer is defined, so two slots suffice for any length.
    fn chain_ir() -> Ir {
        let mut b = IrBuilder::new();
        let src = b.source(SourceKind::Table, vec![4, 8], "t");
        let a = b.gather(src, &[0, 1], "a").unwrap(); // [2, 8]
        let g1 = b.gelu(a, "g1"); // reads a
        let g2 = b.gelu(g1, "g2"); // reads g1; a is dead
        b.gelu(g2, "g3"); // reads g2; g1 dead
        b.finish(PlanNumerics::default())
    }

    #[test]
    fn chain_reuses_buffers() {
        let plan = plan_arena(&chain_ir());
        // 4 same-sized tensors, but at most 2 live at once (producer +
        // consumer), so the arena needs exactly 2 slots.
        assert_eq!(plan.slots.len(), 2);
        assert_eq!(plan.peak_bytes, 2 * 2 * 8 * 4);
        assert_eq!(plan.total_bytes, 4 * 2 * 8 * 4);
        assert!((plan.reuse_factor - 2.0).abs() < 1e-9);
    }

    #[test]
    fn outputs_stay_live_to_the_end() {
        let ranges = live_ranges(&chain_ir());
        let last = ranges.last().unwrap();
        assert_eq!(last.last_use, chain_ir().len(), "unread tensor is an output");
        // Interior tensors die at their single reader.
        assert_eq!(ranges[0].last_use, ranges[1].first_def);
    }

    #[test]
    fn overlapping_lifetimes_get_distinct_slots() {
        let mut b = IrBuilder::new();
        let src = b.source(SourceKind::Table, vec![4, 4], "t");
        let a = b.gather(src, &[0], "a").unwrap();
        let x = b.gelu(a, "x");
        let y = b.gelu(a, "y"); // a still live here
        b.add(x, y, "z").unwrap(); // x and y live simultaneously
        let plan = plan_arena(&b.finish(PlanNumerics::default()));
        // a, x, y all overlap pairwise at some point: ≥ 3 slots.
        assert!(plan.slots.len() >= 3, "{} slots", plan.slots.len());
    }

    #[test]
    fn zero_sized_tensors_need_no_slot() {
        let mut b = IrBuilder::new();
        let src = b.source(SourceKind::Table, vec![4, 4], "t");
        b.gather(src, &[], "empty").unwrap(); // [0, 4]
        let plan = plan_arena(&b.finish(PlanNumerics::default()));
        assert!(plan.slots.is_empty());
        assert_eq!(plan.peak_bytes, 0);
        assert_eq!(plan.reuse_factor, 1.0);
    }

    #[test]
    fn layout_offsets_of_overlapping_requests_are_disjoint() {
        // x and y overlap (both live at step 3); z can reuse either.
        let reqs = [
            ArenaRequest { bytes: 64, first_def: 1, last_use: 3 },
            ArenaRequest { bytes: 32, first_def: 2, last_use: 3 },
            ArenaRequest { bytes: 16, first_def: 4, last_use: 5 },
            ArenaRequest { bytes: 0, first_def: 4, last_use: 5 },
        ];
        let layout = plan_layout(&reqs);
        let a = layout.offsets[0].unwrap();
        let b = layout.offsets[1].unwrap();
        assert!(a + 64 <= b || b + 32 <= a, "overlapping lifetimes must not alias");
        // z fits in the freed 32 B slot (best fit), not the 64 B one.
        assert_eq!(layout.slot_of[2], layout.slot_of[1]);
        assert_eq!(layout.offsets[3], None, "zero-byte request gets no slot");
        assert_eq!(layout.peak_bytes, 96);
        assert_eq!(layout.total_bytes, 112);
    }

    #[test]
    fn plan_arena_matches_layout_accounting() {
        let ir = chain_ir();
        let plan = plan_arena(&ir);
        let ranges = live_ranges(&ir);
        let reqs: Vec<ArenaRequest> = ranges
            .iter()
            .map(|r| ArenaRequest {
                bytes: ir.node_at(r.id.index()).elements() * BYTES_PER_ELEM,
                first_def: r.first_def,
                last_use: r.last_use,
            })
            .collect();
        let layout = plan_layout(&reqs);
        assert_eq!(plan.peak_bytes, layout.peak_bytes);
        assert_eq!(plan.total_bytes, layout.total_bytes);
        assert_eq!(plan.slots.len(), layout.slot_bytes.len());
    }

    #[test]
    fn best_fit_prefers_the_smallest_free_slot() {
        let mut b = IrBuilder::new();
        let src = b.source(SourceKind::Table, vec![64, 8], "t");
        let s = b.gather(src, &[0; 2], "s").unwrap(); // 64 B
        let _gs = b.gelu(s, "gs"); // s dies here; gs is an output
        let m = b.gather(src, &[0; 4], "m").unwrap(); // 128 B, opens a new slot
        let _gm = b.gelu(m, "gm"); // m dies here; gm is an output
                                   // Defined after both the 64 B and the 128 B slot are free: best
                                   // fit must place it in the 64 B slot, not the larger one.
        b.gather(src, &[0; 2], "t_last").unwrap();
        let plan = plan_arena(&b.finish(PlanNumerics::default()));
        let reused_small = plan
            .slots
            .iter()
            .find(|slot| slot.bytes == 2 * 8 * 4 && slot.tenants.len() == 2)
            .expect("the 64 B slot is reused by the last tensor");
        assert_eq!(reused_small.tenants.len(), 2);
        assert!(plan.reuse_factor > 1.0);
    }
}
