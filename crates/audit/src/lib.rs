//! `turl-audit`: static analysis for the TURL workspace.
//!
//! Four auditors, allocation-free with respect to model state (the
//! parity auditor only reads gradients already held by the stores):
//!
//! * [`ShapeFlow`] ([`shape`]) — a symbolic twin of the autograd graph
//!   that pushes *shapes* through every op the runtime supports, and
//!   [`check_model_plan`] ([`plan`]) which replays an entire TURL forward
//!   pass (embeddings → masked Transformer stack → MLM/MER heads) from a
//!   [`ModelPlan`] without allocating a single model-sized tensor.
//! * [`lower_model_plan`] ([`ir`]) — lowers a plan to a typed dataflow
//!   IR over which [`analyze_model_plan`] ([`plan`]) runs value-range
//!   abstract interpretation ([`range`]: intervals + NaN/inf/−0 flags,
//!   proving masked logits vanish and normalizers stay nonzero) and
//!   buffer-liveness arena planning ([`liveness`]: first-def/last-use →
//!   greedy best-fit [`ArenaPlan`] with an honest `peak_bytes`).
//!   [`align_with_graph`] pairs the IR against a real autograd tape to
//!   catch adapter drift.
//! * [`audit_tape`] ([`tape`]) — walks a built `turl_tensor::Graph` and
//!   verifies the invariants backprop relies on: topological parent
//!   order, gradient/value shape agreement, no orphaned grad leaves, and
//!   (optionally) all-finite leaf values.
//! * [`lint_visibility`] / [`validate_masking_config`] ([`visibility`])
//!   — re-derive the §4.3 visibility relation independently and compare
//!   a concrete matrix pair-by-pair; validate the §4.4 MLM/MER masking
//!   ratios and derive the MER branch fractions (10/63/27 at defaults).
//! * [`check_grad_parity`] ([`parallel`]) — compares the gradients left
//!   by a serial (1-thread) and a parallel seeded training step parameter
//!   by parameter, enforcing the pool's split-invariance guarantee.
//! * [`check_value_parity`] ([`resume`]) — compares parameter *values*
//!   bit-for-bit between a reference run and an interrupted-and-resumed
//!   run, enforcing the checkpoint subsystem's exact-resume guarantee.
//! * [`check_metrics_log`] ([`obs`]) — validates a recorded
//!   `--metrics-out` JSONL stream: every line schema-valid, the stream
//!   alive (events and spans present), and the observed §4.4
//!   mask-selection ratios within drift tolerance of their targets.
//!
//! Every violation is a typed [`AuditError`] naming the op or structure
//! and the offending dimensions, suitable both for test assertions and
//! for the `turl audit` CLI gate.

pub mod error;
pub mod ir;
pub mod liveness;
pub mod obs;
pub mod parallel;
pub mod plan;
pub mod range;
pub mod resume;
pub mod shape;
pub mod tape;
pub mod visibility;

pub use error::AuditError;
pub use ir::{
    align_with_graph, lower_model_plan, Ir, IrBuilder, IrNode, OpKind, SourceKind, TensorId,
};
pub use liveness::{
    live_ranges, plan_arena, plan_layout, ArenaLayout, ArenaPlan, ArenaRequest, ArenaSlot,
    LiveRange,
};
pub use obs::{check_metrics_log, MetricsLogReport};
pub use parallel::{check_grad_parity, ParityReport};
pub use plan::{
    analyze_model_plan, analyze_model_plan_with, check_model_plan, ModelPlan, PlanAnalysis,
    PlanNumerics, PlanReport,
};
pub use range::{analyze_ranges, analyze_ranges_with, quantized_range, RangeAnalysis, ValueRange};
pub use resume::check_value_parity;
pub use shape::{SVar, ShapeFlow};
pub use tape::{audit_tape, TapeReport};
pub use visibility::{
    lint_additive_mask, lint_visibility, validate_masking_config, MaskingRatios, VisibilityReport,
};
