//! Visibility-matrix linting (§4.3) and masking-ratio validation (§4.4).
//!
//! The linter re-derives the expected visibility relation directly from
//! the paper's rules — independently of `turl_data`'s own builder — and
//! compares a concrete [`VisibilityMatrix`] against it pair by pair.
//! Because the derivation is separate code, a bug in either
//! implementation shows up as a disagreement instead of being
//! self-consistent.

use crate::error::AuditError;
use turl_data::{EntityPosition, TableInstance, TokenScope, VisibilityMatrix};

/// Independent element classification, re-derived from the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Elem {
    Caption,
    Header(usize),
    Topic,
    Cell { row: usize, col: usize },
}

impl Elem {
    fn describe(self) -> String {
        match self {
            Elem::Caption => "caption".into(),
            Elem::Header(c) => format!("header(col {c})"),
            Elem::Topic => "topic".into(),
            Elem::Cell { row, col } => format!("cell({row}, {col})"),
        }
    }
}

/// §4.3 visibility relation: caption/topic are globally visible, headers
/// see the schema row plus their own column's entities, cell entities see
/// their own row and column.
fn expected_visible(a: Elem, b: Elem) -> bool {
    use Elem::*;
    match (a, b) {
        (Caption, _) | (_, Caption) | (Topic, _) | (_, Topic) => true,
        (Header(_), Header(_)) => true,
        (Header(c), Cell { col, .. }) | (Cell { col, .. }, Header(c)) => c == col,
        (Cell { row: r1, col: c1 }, Cell { row: r2, col: c2 }) => r1 == r2 || c1 == c2,
    }
}

fn classify(inst: &TableInstance) -> Vec<Elem> {
    inst.tokens
        .iter()
        .map(|t| match t.scope {
            TokenScope::Caption => Elem::Caption,
            TokenScope::Header(c) => Elem::Header(c),
        })
        .chain(inst.entities.iter().map(|e| match e.position {
            EntityPosition::Topic => Elem::Topic,
            EntityPosition::Cell { row, col } => Elem::Cell { row, col },
        }))
        .collect()
}

/// Summary of a clean visibility lint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibilityReport {
    /// Sequence length of the linted matrix.
    pub n: usize,
    /// Fraction of visible pairs.
    pub density: f64,
}

/// Lint a visibility matrix against the §4.3 rules for its table.
///
/// Reports every deviation: asymmetry, a masked diagonal, pairs visible
/// that must be masked ([`AuditError::OverVisible`]) and pairs masked
/// that must be visible ([`AuditError::UnderVisible`]).
pub fn lint_visibility(
    inst: &TableInstance,
    m: &VisibilityMatrix,
) -> Result<VisibilityReport, Vec<AuditError>> {
    let elems = classify(inst);
    let n = elems.len();
    if m.n() != n {
        return Err(vec![AuditError::ShapeMismatch {
            op: "visibility_matrix",
            shapes: vec![vec![m.n(), m.n()], vec![n, n]],
            detail: format!(
                "matrix is {}x{} but the table linearizes to {n} elements",
                m.n(),
                m.n()
            ),
        }]);
    }
    let mut errors = Vec::new();
    for i in 0..n {
        if !m.visible(i, i) {
            errors.push(AuditError::UnderVisible {
                i,
                j: i,
                a: elems[i].describe(),
                b: "itself (diagonal)".into(),
            });
        }
        for j in (i + 1)..n {
            if m.visible(i, j) != m.visible(j, i) {
                errors.push(AuditError::AsymmetricVisibility { i, j });
                continue;
            }
            let want = expected_visible(elems[i], elems[j]);
            let got = m.visible(i, j);
            if got && !want {
                errors.push(AuditError::OverVisible {
                    i,
                    j,
                    a: elems[i].describe(),
                    b: elems[j].describe(),
                });
            } else if !got && want {
                errors.push(AuditError::UnderVisible {
                    i,
                    j,
                    a: elems[i].describe(),
                    b: elems[j].describe(),
                });
            }
        }
    }
    if errors.is_empty() {
        Ok(VisibilityReport { n, density: m.density() })
    } else {
        Err(errors)
    }
}

/// Lint a row-major additive attention mask of size `n * n`.
///
/// Entries must be exactly `0.0` (visible) or ≤ `-1e8` (masked), the
/// matrix must be symmetric, and the diagonal must be fully visible.
pub fn lint_additive_mask(mask: &[f32], n: usize) -> Result<(), Vec<AuditError>> {
    if mask.len() != n * n {
        return Err(vec![AuditError::ShapeMismatch {
            op: "additive_mask",
            shapes: vec![vec![mask.len()], vec![n, n]],
            detail: format!("{} entries cannot form an {n}x{n} mask", mask.len()),
        }]);
    }
    let mut errors = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let v = mask[i * n + j];
            let visible = v == 0.0;
            let masked = v <= -1e8;
            // NaN is neither visible nor masked and must be flagged.
            if !visible && !masked {
                errors.push(AuditError::BadMaskValue { i, j, value: v });
            }
        }
        if mask[i * n + i] != 0.0 {
            errors.push(AuditError::UnderVisible {
                i,
                j: i,
                a: format!("element {i}"),
                b: "itself (diagonal)".into(),
            });
        }
        for j in (i + 1)..n {
            let a = mask[i * n + j] == 0.0;
            let b = mask[j * n + i] == 0.0;
            if a != b {
                errors.push(AuditError::AsymmetricVisibility { i, j });
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Derived §4.4 masking branch fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskingRatios {
    /// Fraction of selected entities where mention and entity both stay.
    pub mer_keep_both: f64,
    /// Fraction where mention and entity are both masked.
    pub mer_mask_both: f64,
    /// Fraction where the mention stays but the entity is masked.
    pub mer_keep_mention: f64,
}

fn check_unit_open(field: &'static str, value: f64) -> Result<(), AuditError> {
    if !(value > 0.0 && value < 1.0 && value.is_finite()) {
        return Err(AuditError::RatioOutOfRange {
            field,
            value,
            expected: "the open interval (0, 1)",
        });
    }
    Ok(())
}

/// Validate the §4.4 masking configuration.
///
/// `mlm_select_ratio` and `mer_select_ratio` choose which positions enter
/// the objective; `mer_mention_keep_share` splits the non-keep branch of
/// MER. All three must lie strictly inside `(0, 1)` — a ratio of `0`
/// starves the objective, a ratio of `1` leaves no clean context. On
/// success the derived MER branch fractions are returned; with the paper
/// defaults (`0.6`, keep share `0.3`) they come out to 10% / 63% / 27%.
pub fn validate_masking_config(
    mlm_select_ratio: f64,
    mer_select_ratio: f64,
    mer_mention_keep_share: f64,
) -> Result<MaskingRatios, AuditError> {
    check_unit_open("mlm_select_ratio", mlm_select_ratio)?;
    check_unit_open("mer_select_ratio", mer_select_ratio)?;
    check_unit_open("mer_mention_keep_share", mer_mention_keep_share)?;
    Ok(MaskingRatios {
        mer_keep_both: 0.1,
        mer_mask_both: 0.9 * (1.0 - mer_mention_keep_share),
        mer_keep_mention: 0.9 * mer_mention_keep_share,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_data::{Cell, EntityRef, LinearizeConfig, Table, Vocab};

    fn instance() -> TableInstance {
        let t = Table {
            id: "t".into(),
            page_title: String::new(),
            section_title: String::new(),
            caption: "films".into(),
            topic_entity: Some(EntityRef { id: 50, mention: "topic".into() }),
            headers: vec!["year".into(), "director".into()],
            subject_column: 0,
            rows: vec![
                vec![Cell::linked(1, "a"), Cell::linked(2, "b")],
                vec![Cell::linked(3, "c"), Cell::linked(4, "d")],
            ],
        };
        let v = Vocab::build(["films year director topic a b c d"].iter().map(|s| &**s), 1);
        TableInstance::from_table(&t, &v, &LinearizeConfig::default())
    }

    #[test]
    fn built_matrix_passes_the_lint() {
        let inst = instance();
        let m = VisibilityMatrix::build(&inst);
        let report = lint_visibility(&inst, &m).expect("reference builder must satisfy §4.3");
        assert_eq!(report.n, inst.seq_len());
        assert!(report.density > 0.0 && report.density < 1.0);
    }

    #[test]
    fn allow_all_matrix_is_flagged_over_visible() {
        // Sequence layout: [0] caption, [1..3] headers, [3] topic,
        // [4..8] cell entities. allow_all leaks header->other-column pairs.
        let inst = instance();
        let m = VisibilityMatrix::allow_all(inst.seq_len());
        let errs = lint_visibility(&inst, &m).expect_err("dense matrix leaks");
        assert!(errs.iter().any(|e| matches!(e, AuditError::OverVisible { .. })));
        // The specific §4.3 violation: a header seeing another column's cell.
        assert!(errs.iter().any(|e| match e {
            AuditError::OverVisible { a, b, .. } =>
                a.starts_with("header") && b.starts_with("cell"),
            _ => false,
        }));
    }

    #[test]
    fn wrong_size_matrix_is_rejected() {
        let inst = instance();
        let m = VisibilityMatrix::allow_all(inst.seq_len() + 1);
        let errs = lint_visibility(&inst, &m).expect_err("size mismatch");
        assert!(matches!(errs[0], AuditError::ShapeMismatch { op: "visibility_matrix", .. }));
    }

    #[test]
    fn additive_mask_lint_accepts_reference_output() {
        let inst = instance();
        let m = VisibilityMatrix::build(&inst);
        let mask = m.to_additive_mask(-1e9);
        lint_additive_mask(&mask, m.n()).expect("reference mask is clean");
    }

    #[test]
    fn additive_mask_lint_catches_soft_values_and_asymmetry() {
        let n = 3;
        let mut mask = vec![0.0f32; n * n];
        mask[1] = -0.5; // soft value: neither 0 nor <= -1e8
        let errs = lint_additive_mask(&mask, n).expect_err("soft value");
        assert!(errs.iter().any(|e| matches!(e, AuditError::BadMaskValue { i: 0, j: 1, .. })));

        let mut asym = vec![0.0f32; n * n];
        asym[n + 2] = -1e9; // (1,2) masked but (2,1) visible
        let errs = lint_additive_mask(&asym, n).expect_err("asymmetric");
        assert!(errs.iter().any(|e| matches!(e, AuditError::AsymmetricVisibility { i: 1, j: 2 })));

        let mut diag = vec![0.0f32; n * n];
        diag[0] = -1e9;
        let errs = lint_additive_mask(&diag, n).expect_err("masked diagonal");
        assert!(errs.iter().any(|e| matches!(e, AuditError::UnderVisible { i: 0, j: 0, .. })));
    }

    #[test]
    fn paper_default_ratios_recover_10_63_27() {
        let r = validate_masking_config(0.2, 0.6, 0.3).expect("paper defaults are valid");
        assert!((r.mer_keep_both - 0.10).abs() < 1e-12);
        assert!((r.mer_mask_both - 0.63).abs() < 1e-12);
        assert!((r.mer_keep_mention - 0.27).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_ratios_are_rejected_with_field_names() {
        for (mlm, mer, keep, field) in [
            (0.0, 0.6, 0.3, "mlm_select_ratio"),
            (0.2, 1.0, 0.3, "mer_select_ratio"),
            (0.2, 0.6, -0.1, "mer_mention_keep_share"),
            (0.2, 0.6, f64::NAN, "mer_mention_keep_share"),
        ] {
            match validate_masking_config(mlm, mer, keep) {
                Err(AuditError::RatioOutOfRange { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected RatioOutOfRange for {field}, got {other:?}"),
            }
        }
    }
}
