//! Interval + special-value abstract domain, and the range analysis that
//! pushes it through a lowered forward-plan IR.
//!
//! Every tensor is abstracted by a [`ValueRange`]: a closed interval
//! `[lo, hi]` over the values any element may take, plus three flags for
//! the IEEE special values an `f32` computation can produce (`NaN`,
//! `±inf`, `-0.0`). [`analyze_ranges`] walks an [`Ir`] tape applying one
//! transfer function per op and reports, as typed [`AuditError`]s, every
//! invariant it cannot prove from the configuration and the
//! initialization bounds:
//!
//! * [`AuditError::DegenerateNormalizer`] — a layer norm whose `eps ≤ 0`
//!   cannot bound its denominator away from zero (a constant row has
//!   variance exactly `0`).
//! * [`AuditError::UnboundedActivation`] — an interval escapes the
//!   finite `f32` range, so overflow to infinity is reachable.
//! * [`AuditError::NanReachable`] — NaN first becomes producible at an
//!   op (e.g. softmax over a row that may be entirely `-inf`).
//!
//! Transfer functions are sound but deliberately simple: plain interval
//! arithmetic in `f64`, widened outward after every op by a small
//! relative slack so `f32` round-off in the real kernels can never
//! escape the predicted interval. Two structural facts make the bounds
//! useful rather than exponentially loose: softmax output is
//! row-stochastic (so attention context lies in the convex hull of the
//! values operand), and layer norm output is bounded by `sqrt(d - 1)`
//! regardless of its input scale (the normalizer is what keeps deep
//! residual towers finite).

use crate::error::AuditError;
use crate::ir::{Ir, OpKind, SourceKind};

/// Largest finite `f32`, as the `f64` the analysis computes in.
const F32_MAX: f64 = f32::MAX as f64;
/// Relative outward widening applied after every transfer, absorbing
/// `f32` round-off in the real kernels.
const WIDEN_REL: f64 = 1e-5;
/// Absolute outward widening floor.
const WIDEN_ABS: f64 = 1e-9;
/// Global minimum of the tanh-approximated GELU (`≈ -0.170_041` at
/// `x ≈ -0.752_46`), rounded outward.
const GELU_MIN: f64 = -0.170_05;
/// `-ln(1e-12)`: the cross-entropy clamp ceiling, rounded outward.
const CE_MAX: f64 = 27.631_022;
/// Extra relative slack on the layer-norm `sqrt(d-1)` bound: the mean
/// and variance are themselves computed in `f32`, so cancellation error
/// scales worse than one ulp per op.
const LN_SLACK: f64 = 1e-3;

/// Abstract value of one tensor: interval plus IEEE special-value flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueRange {
    /// Inclusive lower bound over all elements (finite unless
    /// [`ValueRange::can_be_inf`]).
    pub lo: f64,
    /// Inclusive upper bound over all elements.
    pub hi: f64,
    /// Whether any element may be NaN.
    pub can_be_nan: bool,
    /// Whether any element may be `±inf`.
    pub can_be_inf: bool,
    /// Whether any element may be the negative zero `-0.0`.
    pub can_be_neg_zero: bool,
}

impl ValueRange {
    /// The exact constant `c`.
    pub fn exact(c: f64) -> Self {
        Self { lo: c, hi: c, can_be_nan: false, can_be_inf: false, can_be_neg_zero: false }
            .normalized()
    }

    /// A finite interval `[lo, hi]` with no special values beyond what
    /// the interval itself implies.
    pub fn bounded(lo: f64, hi: f64) -> Self {
        Self { lo, hi, can_be_nan: false, can_be_inf: false, can_be_neg_zero: false }.normalized()
    }

    /// Derive the implied flags: an interval that escapes the finite
    /// `f32` range can overflow to infinity, and any interval admitting
    /// negative values admits `-0.0` (gradual underflow rounds tiny
    /// negatives to the negative zero).
    fn normalized(mut self) -> Self {
        if self.lo.is_nan() || self.hi.is_nan() {
            self.can_be_nan = true;
            self.lo = f64::NEG_INFINITY;
            self.hi = f64::INFINITY;
        }
        if self.lo < -F32_MAX || self.hi > F32_MAX {
            self.can_be_inf = true;
        }
        if self.lo < 0.0 {
            self.can_be_neg_zero = true;
        }
        self
    }

    /// Widen outward by a small relative + absolute slack so `f32`
    /// rounding in the real kernels stays inside the prediction.
    fn widened(mut self) -> Self {
        if self.lo.is_finite() {
            self.lo -= WIDEN_REL * self.lo.abs() + WIDEN_ABS;
        }
        if self.hi.is_finite() {
            self.hi += WIDEN_REL * self.hi.abs() + WIDEN_ABS;
        }
        self.normalized()
    }

    /// Whether the interval (ignoring flags) escapes finite `f32`.
    fn escapes_f32(&self) -> bool {
        self.lo < -F32_MAX || self.hi > F32_MAX
    }

    /// Whether `0` lies inside the interval.
    fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Smallest range covering both operands.
    pub fn union(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            can_be_nan: self.can_be_nan || other.can_be_nan,
            can_be_inf: self.can_be_inf || other.can_be_inf,
            can_be_neg_zero: self.can_be_neg_zero || other.can_be_neg_zero,
        }
        .normalized()
    }

    /// Soundness predicate: is the concrete `f32` value explained by
    /// this abstract value?
    pub fn contains(&self, v: f32) -> bool {
        if v.is_nan() {
            return self.can_be_nan;
        }
        if v.is_infinite() {
            return self.can_be_inf;
        }
        if v == 0.0 && v.is_sign_negative() && !self.can_be_neg_zero {
            return false;
        }
        self.lo <= f64::from(v) && f64::from(v) <= self.hi
    }

    // ------------------------------------------------------------------
    // Transfer functions
    // ------------------------------------------------------------------

    /// `a + b` elementwise (broadcasting does not change element ranges).
    /// An inherent method rather than `std::ops::Add`: it is a widening
    /// transfer function, not exact arithmetic, and the explicit call
    /// keeps that visible at use sites.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, b: Self) -> Self {
        Self {
            lo: self.lo + b.lo,
            hi: self.hi + b.hi,
            // +inf + -inf = NaN; with a single "any infinity" flag the
            // sound over-approximation is: both operands infinite.
            can_be_nan: self.can_be_nan || b.can_be_nan || (self.can_be_inf && b.can_be_inf),
            can_be_inf: self.can_be_inf || b.can_be_inf,
            // x + y rounds to -0 only when both addends are -0, or the
            // true sum underflows from below (covered by `lo < 0`).
            can_be_neg_zero: self.can_be_neg_zero && b.can_be_neg_zero,
        }
        .normalized()
        .widened()
    }

    /// Interval product endpoints (helper for matmul-family transfers).
    fn mul_interval(self, b: Self) -> (f64, f64) {
        let p = [self.lo * b.lo, self.lo * b.hi, self.hi * b.lo, self.hi * b.hi];
        let lo = p.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // 0 * inf products produce NaN endpoints; treat as full range.
        if lo.is_nan() || hi.is_nan() {
            (f64::NEG_INFINITY, f64::INFINITY)
        } else {
            (lo, hi)
        }
    }

    /// Inner product of `k`-length vectors drawn from `self` and `b`:
    /// the sum of `k` values each inside the elementwise product
    /// interval. Shared by `matmul`, `matmul_nt`, `bmm`, `bmm_nt`.
    pub fn dot(self, b: Self, k: usize) -> Self {
        if k == 0 {
            return Self::exact(0.0);
        }
        let (plo, phi) = self.mul_interval(b);
        let kf = k as f64;
        Self {
            lo: kf * plo,
            hi: kf * phi,
            can_be_nan: self.can_be_nan
                || b.can_be_nan
                || ((self.can_be_inf || b.can_be_inf)
                    && (self.contains_zero() || b.contains_zero()))
                || (self.can_be_inf && b.can_be_inf),
            can_be_inf: self.can_be_inf || b.can_be_inf,
            can_be_neg_zero: false, // implied flag re-derived by normalized()
        }
        .normalized()
        .widened()
    }

    /// Row-stochastic matmul: when the left operand's rows are convex
    /// weights (softmax output, or a mention-averaging matrix), every
    /// output element is a convex combination of the right operand's
    /// elements and stays inside its hull. Far tighter than [`Self::dot`].
    pub fn convex_combination(self, values: Self) -> Self {
        Self {
            lo: values.lo,
            hi: values.hi,
            // A zero weight against an infinite value is 0 * inf = NaN.
            can_be_nan: self.can_be_nan || values.can_be_nan || values.can_be_inf,
            can_be_inf: values.can_be_inf,
            can_be_neg_zero: values.can_be_neg_zero,
        }
        .normalized()
        .widened()
    }

    /// `c * x` for a constant `c`.
    pub fn scale(self, c: f64) -> Self {
        let (a, b) = (self.lo * c, self.hi * c);
        Self {
            lo: a.min(b),
            hi: a.max(b),
            can_be_nan: self.can_be_nan || (self.can_be_inf && c == 0.0),
            can_be_inf: self.can_be_inf && c != 0.0,
            can_be_neg_zero: false,
        }
        .normalized()
        .widened()
    }

    /// Tanh-approximated GELU. Monotone outside a single dip around
    /// `x ≈ -0.76`, so the extrema are the endpoints plus (when the
    /// interval reaches below zero) the global minimum [`GELU_MIN`].
    /// `gelu(-inf)` is `0.5 · (-inf) · 0 = NaN` in the runtime kernel.
    pub fn gelu(self) -> Self {
        let g_lo = gelu64(self.lo.max(-F32_MAX));
        let g_hi = gelu64(self.hi.min(F32_MAX));
        let mut lo = g_lo.min(g_hi);
        if self.lo < 0.0 {
            lo = lo.min(GELU_MIN);
        }
        Self {
            lo,
            hi: g_lo.max(g_hi),
            can_be_nan: self.can_be_nan || self.can_be_inf,
            can_be_inf: self.can_be_inf,
            can_be_neg_zero: false,
        }
        .normalized()
        .widened()
    }

    /// Stabilized softmax over the last axis: outputs are probabilities
    /// in `[0, 1]` exactly (each term `exp(x - max) ≤ 1` and the sum is
    /// at least the term itself, so the quotient cannot round above 1).
    /// NaN is reachable only when the input carries NaN, or carries an
    /// infinity: `+inf` gives `inf - inf` in the max-shift, and a row of
    /// all `-inf` gives `exp(-inf - -inf) = exp(NaN)`.
    pub fn softmax(self) -> Self {
        Self {
            lo: 0.0,
            hi: 1.0,
            can_be_nan: self.can_be_nan || self.can_be_inf,
            can_be_inf: false,
            can_be_neg_zero: false,
        }
    }

    /// Cross-entropy with the runtime's `max(p, 1e-12)` clamp: the mean
    /// negative log-likelihood lies in `[0, -ln(1e-12)]`.
    pub fn cross_entropy(self) -> Self {
        Self {
            lo: 0.0,
            hi: CE_MAX,
            can_be_nan: self.can_be_nan || self.can_be_inf,
            can_be_inf: false,
            can_be_neg_zero: false,
        }
        .widened()
    }

    /// Layer norm over rows of width `d` with affine `gamma`/`beta`.
    ///
    /// For any finite row, the standardized values satisfy
    /// `|x̂_j| ≤ sqrt((d-1) · var / (var + eps)) < sqrt(d - 1)` — the
    /// zero-mean constraint caps how far one coordinate can sit from the
    /// rest in units of the row's own standard deviation. The bound
    /// holds for *any* input scale, which is what keeps the residual
    /// tower's ranges from compounding layer over layer. Requires
    /// `eps > 0`; the caller reports [`AuditError::DegenerateNormalizer`]
    /// otherwise (a constant row has variance exactly zero).
    pub fn layer_norm(self, gamma: Self, beta: Self, eps: f64, d: usize) -> Self {
        // NaN-safe "not provably positive": NaN eps is degenerate too.
        let degenerate = eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater);
        let bound = (d.saturating_sub(1) as f64).sqrt() * (1.0 + LN_SLACK) + WIDEN_ABS;
        let xhat = Self {
            lo: -bound,
            hi: bound,
            // An infinite input makes the variance infinite and the
            // inverse scale zero: inf * 0 = NaN.
            can_be_nan: self.can_be_nan || self.can_be_inf || degenerate,
            can_be_inf: degenerate,
            can_be_neg_zero: true,
        }
        .normalized();
        // y = x̂ * gamma + beta, elementwise.
        let (plo, phi) = xhat.mul_interval(gamma);
        Self {
            lo: plo + beta.lo,
            hi: phi + beta.hi,
            can_be_nan: xhat.can_be_nan || gamma.can_be_nan || beta.can_be_nan,
            can_be_inf: xhat.can_be_inf || gamma.can_be_inf || beta.can_be_inf,
            can_be_neg_zero: false,
        }
        .normalized()
        .widened()
    }
}

impl std::fmt::Display for ValueRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>10.3e}, {:>10.3e}]", self.lo, self.hi)?;
        if self.can_be_nan {
            write!(f, " nan?")?;
        }
        if self.can_be_inf {
            write!(f, " inf?")?;
        }
        if self.can_be_neg_zero {
            write!(f, " -0?")?;
        }
        Ok(())
    }
}

/// `f64` twin of the runtime `gelu_fwd` kernel (same tanh constant).
fn gelu64(x: f64) -> f64 {
    0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044_715 * x * x * x)).tanh())
}

/// Result of a full range analysis over an IR tape.
#[derive(Debug, Clone)]
pub struct RangeAnalysis {
    /// Abstract value per IR tensor, indexed by node id.
    pub ranges: Vec<ValueRange>,
    /// Every invariant the analysis could not prove, in tape order.
    pub errors: Vec<AuditError>,
    /// Largest provable upper bound, over all masked softmaxes, on the
    /// attention weight a masked pair can receive: `exp(hi + penalty -
    /// lo)` with the diagonal guaranteed visible. `None` when the plan
    /// has no visibility mask. At the runtime's `-1e9` penalty this is
    /// `exp(-1e9 + O(1))` — the masked logits provably vanish.
    pub masked_weight_bound: Option<f64>,
}

/// Abstract value of a source node, derived from the plan's numerics.
fn source_range(ir: &Ir, kind: &SourceKind) -> ValueRange {
    let n = ir.numerics;
    match kind {
        // Embedding tables: N(0, std) via Box–Muller is hard-bounded
        // (see turl_tensor::normal_init_bound); entity rows initialized
        // from name averages are convex combinations of word rows and
        // stay inside the same bound.
        SourceKind::Table => ValueRange::bounded(-n.embed_init_bound, n.embed_init_bound),
        // Linear weights: kaiming uniform, exactly U(-1/sqrt(fan_in), ·).
        SourceKind::Weight { fan_in } => {
            let b = (fan_in.max(&1).to_owned() as f64).sqrt().recip();
            ValueRange::bounded(-b, b)
        }
        SourceKind::Bias | SourceKind::Beta | SourceKind::ZeroConst => ValueRange::exact(0.0),
        SourceKind::Gamma => ValueRange::exact(1.0),
        // Additive visibility mask: 0 for visible pairs, `penalty` for
        // masked ones. A -inf penalty is representable (and exempt from
        // the unbounded-activation check: -inf logits are legitimate
        // *before* a softmax — the danger surfaces there instead).
        SourceKind::Mask => {
            let p = n.mask_penalty;
            ValueRange {
                lo: p.min(0.0),
                hi: 0.0,
                can_be_nan: p.is_nan(),
                can_be_inf: p.is_infinite(),
                can_be_neg_zero: false,
            }
            .normalized()
        }
        // Mention-averaging matrix: rows of 1/len weights (or all zero
        // for a mention-less entity).
        SourceKind::AvgMatrix => ValueRange::bounded(0.0, 1.0),
    }
}

/// The abstract value of a block-quantized (`i8b32`) parameter: every
/// stored scalar is `q · scale` with `q ∈ [-127, 127]` and
/// `scale ≤ max_scale`, so the dequantized values are hard-bounded by
/// `±127 · max_scale` — usually a *tighter* interval than the init-time
/// bound the analyzer assumes for dense parameters, since quantization
/// happens after training has shrunk the weights.
pub fn quantized_range(max_scale: f64) -> ValueRange {
    let b = 127.0 * max_scale.abs();
    ValueRange::bounded(-b, b)
}

/// Run the abstract interpreter over a lowered IR.
///
/// Returns per-tensor ranges plus every unprovable invariant as a typed
/// error. Errors are reported at their *origin*: the first node where
/// NaN becomes reachable, the first interval to escape `f32`, each
/// degenerate normalizer — downstream propagation of an already-reported
/// flag is not re-reported.
pub fn analyze_ranges(ir: &Ir) -> RangeAnalysis {
    analyze_ranges_with(ir, &[])
}

/// [`analyze_ranges`] with per-source range overrides, keyed by the
/// source node's label.
///
/// This is how dtype information flows into the analyzer: a caller that
/// knows some parameters are block-quantized (e.g. `turl infer
/// --artifact` on an int8 artifact) replaces their init-time ranges with
/// the exact dequantization bound from [`quantized_range`], and the
/// NaN-reachability / bounded-activation / sound-normalizer proofs hold
/// for the quantized forward rather than the dense one. Labels that
/// match no source in the IR are ignored.
pub fn analyze_ranges_with(ir: &Ir, overrides: &[(String, ValueRange)]) -> RangeAnalysis {
    let mut ranges: Vec<ValueRange> = Vec::with_capacity(ir.len());
    let mut errors = Vec::new();
    let mut masked_weight_bound: Option<f64> = None;

    for id in 0..ir.len() {
        let node = ir.node_at(id);
        let input = |i: usize| ranges[node.inputs[i].index()];
        let k_inner = |of: usize| *ir.node_at(node.inputs[of].index()).shape.last().unwrap_or(&0);
        let r = match &node.kind {
            OpKind::Source(kind) => overrides
                .iter()
                .find(|(label, _)| *label == node.label)
                .map(|(_, r)| *r)
                .unwrap_or_else(|| source_range(ir, kind)),
            // Gathered rows take the table's range; reshapes, permutes
            // and concats move values without changing them.
            OpKind::Gather | OpKind::Reshape | OpKind::Permute => input(0),
            OpKind::ConcatCols | OpKind::ConcatRows => {
                let mut acc = input(0);
                for i in 1..node.inputs.len() {
                    acc = acc.union(input(i));
                }
                acc
            }
            OpKind::Add => input(0).add(input(1)),
            OpKind::Mask => {
                // Additive mask application: each logit is shifted by a
                // value in [penalty, 0].
                let mask = input(1);
                ValueRange {
                    lo: input(0).lo + mask.lo,
                    hi: input(0).hi + mask.hi,
                    can_be_nan: input(0).can_be_nan || mask.can_be_nan,
                    can_be_inf: input(0).can_be_inf || mask.can_be_inf,
                    can_be_neg_zero: false,
                }
                .normalized()
                .widened()
            }
            OpKind::Scale { factor } => input(0).scale(*factor),
            OpKind::Gelu => input(0).gelu(),
            OpKind::Softmax => {
                // With a finite additive mask upstream, bound the weight
                // any masked pair can receive: its logit is at most
                // hi + penalty while the guaranteed-visible diagonal
                // keeps the row max at least lo, and the stabilized
                // denominator is at least exp(0) = 1.
                let pre = node.inputs[0].index();
                if matches!(ir.node_at(pre).kind, OpKind::Mask) {
                    let scores = ranges[ir.node_at(pre).inputs[0].index()];
                    let p = ir.numerics.mask_penalty;
                    if p.is_finite() && scores.lo.is_finite() && scores.hi.is_finite() {
                        let w = (scores.hi + p - scores.lo).exp();
                        masked_weight_bound =
                            Some(masked_weight_bound.map_or(w, |prev: f64| prev.max(w)));
                    }
                }
                input(0).softmax()
            }
            OpKind::MatMul | OpKind::Bmm => {
                // Row-stochastic left operands (softmax output, the
                // mention-averaging matrix) keep the result inside the
                // right operand's hull; a mention-less entity's all-zero
                // weight row additionally admits exact 0.
                let lhs = ir.node_at(node.inputs[0].index());
                match lhs.kind {
                    OpKind::Softmax => input(0).convex_combination(input(1)),
                    OpKind::Source(SourceKind::AvgMatrix) => {
                        input(0).convex_combination(input(1)).union(ValueRange::exact(0.0))
                    }
                    _ => input(0).dot(input(1), k_inner(0)),
                }
            }
            OpKind::MatMulNT | OpKind::BmmNT => input(0).dot(input(1), k_inner(0)),
            OpKind::LayerNorm { eps } => {
                let d = *node.shape.last().unwrap_or(&1);
                if eps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    errors.push(AuditError::DegenerateNormalizer {
                        tensor: node.label.clone(),
                        eps: *eps,
                    });
                }
                input(0).layer_norm(input(1), input(2), *eps, d)
            }
            OpKind::CrossEntropy => input(0).cross_entropy(),
        };

        // Origin-only reporting: flag transitions, not propagation.
        let any_input =
            |f: fn(&ValueRange) -> bool| node.inputs.iter().any(|t| f(&ranges[t.index()]));
        if r.can_be_nan && !any_input(|v| v.can_be_nan) {
            errors.push(AuditError::NanReachable {
                op: node.kind.name(),
                tensor: node.label.clone(),
            });
        }
        let exempt = matches!(node.kind, OpKind::Mask | OpKind::Source(SourceKind::Mask));
        if r.escapes_f32() && !exempt && !any_input(|v| v.escapes_f32()) {
            errors.push(AuditError::UnboundedActivation {
                tensor: node.label.clone(),
                lo: r.lo,
                hi: r.hi,
            });
        }
        ranges.push(r);
    }

    RangeAnalysis { ranges, errors, masked_weight_bound }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_add_is_sound_for_endpoints() {
        let a = ValueRange::bounded(-1.0, 2.0);
        let b = ValueRange::bounded(0.5, 3.0);
        let c = a.add(b);
        assert!(c.contains(-0.5) && c.contains(5.0));
        assert!(!c.contains(6.0));
        assert!(!c.can_be_nan && !c.can_be_inf);
    }

    #[test]
    fn dot_scales_with_inner_dim() {
        let a = ValueRange::bounded(-1.0, 1.0);
        let w = ValueRange::bounded(-0.5, 0.5);
        let y = a.dot(w, 8);
        assert!(y.contains(4.0) && y.contains(-4.0));
        assert!(!y.contains(4.5));
    }

    #[test]
    fn overflow_is_flagged_as_unbounded() {
        let a = ValueRange::bounded(-2e38, 2e38);
        let b = a.add(a);
        assert!(b.can_be_inf, "4e38 escapes f32");
        assert!(b.contains(f32::INFINITY));
    }

    #[test]
    fn gelu_covers_the_dip_and_negative_zero() {
        let r = ValueRange::bounded(-10.0, 3.0).gelu();
        // gelu(-0.75246) ≈ -0.170041 (the global dip) must be inside.
        assert!(r.contains(-0.170_041));
        assert!(r.contains(2.996));
        assert!(r.can_be_neg_zero, "gelu(-30) rounds to -0.0 in f32");
        assert!(!r.can_be_nan);
        // Entirely positive input: strictly positive output.
        let p = ValueRange::bounded(1.0, 2.0).gelu();
        assert!(p.lo > 0.0 && !p.can_be_neg_zero);
    }

    #[test]
    fn softmax_is_a_probability_and_kills_neg_zero() {
        let r = ValueRange::bounded(-1e9, 40.0).softmax();
        assert_eq!((r.lo, r.hi), (0.0, 1.0));
        assert!(!r.can_be_nan && !r.can_be_inf && !r.can_be_neg_zero);
        // An infinite logit makes NaN reachable (inf - inf, all--inf rows).
        let inf_in = ValueRange::bounded(-1.0, 1.0);
        let inf_in = ValueRange { can_be_inf: true, ..inf_in };
        assert!(inf_in.softmax().can_be_nan);
    }

    #[test]
    fn layer_norm_bound_is_scale_free() {
        let g = ValueRange::exact(1.0);
        let b = ValueRange::exact(0.0);
        let tame = ValueRange::bounded(-1.0, 1.0).layer_norm(g, b, 1e-5, 64);
        let wild = ValueRange::bounded(-1e30, 1e30).layer_norm(g, b, 1e-5, 64);
        let cap = (63f64).sqrt() * 1.01;
        for r in [tame, wild] {
            assert!(r.hi <= cap && r.lo >= -cap, "ln bound {r:?}");
            assert!(!r.can_be_nan);
        }
        let degen = ValueRange::bounded(-1.0, 1.0).layer_norm(g, b, 0.0, 64);
        assert!(degen.can_be_nan);
    }

    #[test]
    fn convex_combination_stays_in_hull() {
        let w = ValueRange::bounded(0.0, 1.0);
        let v = ValueRange::bounded(-3.0, 7.0);
        let y = w.convex_combination(v);
        assert!(y.contains(-3.0) && y.contains(7.0) && !y.contains(8.0));
    }

    #[test]
    fn contains_distinguishes_special_values() {
        let r = ValueRange::bounded(0.0, 1.0);
        assert!(!r.contains(f32::NAN));
        assert!(!r.contains(f32::INFINITY));
        assert!(!r.contains(-0.0));
        let n = ValueRange::bounded(-1.0, 1.0);
        assert!(n.contains(-0.0), "negative interval admits -0.0");
    }
}
