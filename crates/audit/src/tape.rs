//! Autograd-tape auditing.
//!
//! [`audit_tape`] walks a built `turl_tensor::Graph` and verifies the
//! structural invariants the backward pass silently relies on:
//!
//! 1. **Topological order** — every node's parents precede it on the tape.
//! 2. **Gradient shapes** — any accumulated gradient matches its node's
//!    value shape exactly.
//! 3. **No orphaned grad leaves** — a leaf created with `requires_grad`
//!    must be consumed by at least one op, otherwise its gradient can
//!    never be populated and the optimizer would silently skip it.
//! 4. **Finite leaves** (optional) — leaf values contain no NaN/inf; a
//!    single poisoned embedding row corrupts every step downstream.

use crate::error::AuditError;
use turl_tensor::Graph;

/// Summary of a clean tape audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeReport {
    /// Total nodes on the tape.
    pub n_nodes: usize,
    /// Leaves (nodes with no parents and no backward closure).
    pub n_leaves: usize,
    /// Nodes participating in gradient flow.
    pub n_grad_nodes: usize,
}

/// Check every structural invariant of `g`'s tape.
///
/// Returns all violations found (not just the first) so a corrupted
/// graph can be diagnosed in one pass. `check_finite` additionally scans
/// leaf values for NaN/inf; it is O(total elements), so callers gate it
/// behind `debug_assertions`.
pub fn audit_tape(g: &Graph, check_finite: bool) -> Result<TapeReport, Vec<AuditError>> {
    let mut errors = Vec::new();
    let mut consumed = vec![false; g.len()];
    let mut n_leaves = 0usize;
    let mut n_grad_nodes = 0usize;

    for v in g.vars() {
        let idx = v.index();
        for &p in g.parents(v) {
            if p.index() >= idx {
                errors.push(AuditError::TapeOrder { node: idx, parent: p.index() });
            }
            if p.index() < consumed.len() {
                consumed[p.index()] = true;
            }
        }
        if let Some(grad) = g.grad(v) {
            if grad.shape() != g.value(v).shape() {
                errors.push(AuditError::GradShapeMismatch {
                    node: idx,
                    value: g.value(v).shape().to_vec(),
                    grad: grad.shape().to_vec(),
                });
            }
        }
        if g.needs_grad(v) {
            n_grad_nodes += 1;
        }
        if g.is_leaf(v) {
            n_leaves += 1;
            if check_finite {
                if let Some((i, &x)) =
                    g.value(v).data().iter().enumerate().find(|(_, x)| !x.is_finite())
                {
                    errors.push(AuditError::NonFiniteLeaf { node: idx, index: i, value: x });
                }
            }
        }
    }

    // Orphan check needs the full consumption map, so it runs second.
    for v in g.vars() {
        if g.is_leaf(v) && g.needs_grad(v) && !consumed[v.index()] {
            errors.push(AuditError::OrphanGradLeaf { node: v.index() });
        }
    }

    if errors.is_empty() {
        Ok(TapeReport { n_nodes: g.len(), n_leaves, n_grad_nodes })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_tensor::Tensor;

    #[test]
    fn clean_graph_passes_and_reports_counts() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]), true);
        let b = g.constant(Tensor::from_vec(vec![2, 2], vec![0.5; 4]));
        let c = g.mul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        let report = audit_tape(&g, true).expect("clean tape");
        assert_eq!(report.n_nodes, g.len());
        assert_eq!(report.n_leaves, 2);
        assert!(report.n_grad_nodes >= 3);
    }

    #[test]
    fn non_finite_leaf_is_detected_only_when_requested() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![3], vec![1.0, f32::NAN, 3.0]), true);
        let loss = g.sum_all(a);
        g.backward(loss);

        let errs = audit_tape(&g, true).expect_err("NaN leaf must fail");
        assert!(errs
            .iter()
            .any(|e| matches!(e, AuditError::NonFiniteLeaf { node: 0, index: 1, .. })));
        // Without the finite check the same tape is structurally fine.
        assert!(audit_tape(&g, false).is_ok());
    }

    #[test]
    fn orphaned_grad_leaf_is_detected() {
        let mut g = Graph::new();
        let _orphan = g.leaf(Tensor::from_vec(vec![2], vec![1.0, 2.0]), true);
        let b = g.leaf(Tensor::from_vec(vec![2], vec![3.0, 4.0]), true);
        let _loss = g.sum_all(b);
        let errs = audit_tape(&g, false).expect_err("orphan must fail");
        assert!(errs.iter().any(|e| matches!(e, AuditError::OrphanGradLeaf { node: 0 })));
    }

    #[test]
    fn grad_shapes_always_match_values_after_backward() {
        // End-to-end: a small attention-like computation, then verify the
        // auditor agrees every accumulated gradient is value-shaped.
        let mut g = Graph::new();
        let x =
            g.leaf(Tensor::from_vec(vec![4, 6], (0..24).map(|i| i as f32 * 0.1).collect()), true);
        let w =
            g.leaf(Tensor::from_vec(vec![6, 6], (0..36).map(|i| (i as f32).sin()).collect()), true);
        let h = g.matmul(x, w);
        let s = g.softmax_last(h);
        let loss = g.mean_all(s);
        g.backward(loss);
        assert!(audit_tape(&g, true).is_ok());
    }
}
