//! Resume-parity auditor.
//!
//! The crash-safe checkpoint subsystem promises *exact* resume: a run
//! interrupted at any optimizer step and restarted from its checkpoint
//! must produce bit-identical parameters to the uninterrupted run. This
//! module compares the parameter **values** of two stores — one from the
//! reference run, one from the interrupted-and-resumed run — and reports
//! any divergence in parameter sets, shapes, or values. Unlike the
//! gradient parity check, values are compared through their bit patterns
//! so `-0.0` vs `0.0` and NaN payload differences are caught too.

use crate::error::AuditError;
use crate::parallel::ParityReport;
use turl_nn::ParamStore;

/// Compare the parameter values of `reference` and `resumed` stores
/// parameter by parameter. Both stores must hold the same parameters
/// (matched by name and registration order); every pair of values must
/// agree in shape and be bit-identical element-wise (`f32::to_bits`).
/// On success the report's `max_abs_diff` is `0.0` by construction.
pub fn check_value_parity(
    reference: &ParamStore,
    resumed: &ParamStore,
) -> Result<ParityReport, Vec<AuditError>> {
    let mut errors = Vec::new();
    if reference.len() != resumed.len() {
        errors.push(AuditError::BadConfig {
            field: "value_parity.params",
            detail: format!("stores hold {} vs {} parameters", reference.len(), resumed.len()),
        });
        return Err(errors);
    }
    let mut n_scalars = 0usize;
    for id in reference.ids() {
        let name = reference.name(id);
        if resumed.name(id) != name {
            errors.push(AuditError::BadConfig {
                field: "value_parity.names",
                detail: format!("param {id:?}: `{name}` vs `{}`", resumed.name(id)),
            });
            continue;
        }
        let (va, vb) = (reference.value(id), resumed.value(id));
        if va.shape() != vb.shape() {
            errors.push(AuditError::ShapeMismatch {
                op: "value_parity",
                shapes: vec![va.shape().to_vec(), vb.shape().to_vec()],
                detail: format!("`{name}`: reference vs resumed value shapes differ"),
            });
            continue;
        }
        for (i, (a, b)) in va.data().iter().zip(vb.data().iter()).enumerate() {
            if a.to_bits() != b.to_bits() {
                errors.push(AuditError::BadConfig {
                    field: "value_parity.values",
                    detail: format!(
                        "`{name}` element {i}: reference {a} ({:#010x}) vs resumed {b} ({:#010x})",
                        a.to_bits(),
                        b.to_bits()
                    ),
                });
                break;
            }
        }
        n_scalars += va.len();
    }
    if errors.is_empty() {
        Ok(ParityReport { n_params: reference.len(), n_scalars, max_abs_diff: 0.0 })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_tensor::Tensor;

    fn store_with_value(v: Vec<f32>) -> ParamStore {
        let mut s = ParamStore::new();
        s.register("w", Tensor::from_vec(vec![v.len()], v));
        s
    }

    #[test]
    fn identical_values_pass() {
        let a = store_with_value(vec![1.0, -2.0, 3.5]);
        let b = store_with_value(vec![1.0, -2.0, 3.5]);
        let r = check_value_parity(&a, &b).expect("identical values must pass");
        assert_eq!(r.n_params, 1);
        assert_eq!(r.n_scalars, 3);
        assert_eq!(r.max_abs_diff, 0.0);
    }

    #[test]
    fn sign_of_zero_is_not_ignored() {
        let a = store_with_value(vec![0.0]);
        let b = store_with_value(vec![-0.0]);
        let errs = check_value_parity(&a, &b).unwrap_err();
        assert!(errs[0].to_string().contains("element 0"), "{}", errs[0]);
    }

    #[test]
    fn diverging_values_are_reported() {
        let a = store_with_value(vec![1.0, 2.0]);
        let b = store_with_value(vec![1.0, 2.5]);
        let errs = check_value_parity(&a, &b).unwrap_err();
        assert!(errs[0].to_string().contains("element 1"), "{}", errs[0]);
    }

    #[test]
    fn parameter_count_mismatch_is_fatal() {
        let a = store_with_value(vec![1.0]);
        let mut b = store_with_value(vec![1.0]);
        b.register("extra", Tensor::zeros(vec![2]));
        assert!(check_value_parity(&a, &b).is_err());
    }
}
