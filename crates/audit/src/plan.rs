//! Symbolic validation of a full TURL forward plan.
//!
//! [`check_model_plan`] replays the entire `TurlModel` computation —
//! embedding layer (Eqns. 1–3), `N` visibility-masked Transformer blocks,
//! and the MLM/MER heads (Eqns. 5–6) — on a [`ShapeFlow`] tape. Only
//! shapes move; no model-sized tensor is ever allocated, so a
//! misconfigured model fails in microseconds with a typed error instead
//! of panicking deep inside a training step.

use crate::error::AuditError;
use crate::shape::ShapeFlow;

/// Structural description of one forward pass, independent of weights.
///
/// `turl-core` adapts a `TurlConfig` plus corpus statistics into this
/// struct; keeping it plain data avoids a dependency cycle between the
/// model crate and the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelPlan {
    /// Encoder depth `N`.
    pub n_layers: usize,
    /// Hidden size `d`.
    pub d_model: usize,
    /// Feed-forward inner size `d_i`.
    pub d_intermediate: usize,
    /// Attention heads `h`.
    pub n_heads: usize,
    /// Word vocabulary size.
    pub n_words: usize,
    /// Entity vocabulary size (excluding the `[MASK]` row).
    pub n_entities: usize,
    /// Position embedding table size.
    pub max_position: usize,
    /// Token elements in the sequence being planned.
    pub n_tokens: usize,
    /// Entity elements in the sequence being planned.
    pub n_seq_entities: usize,
    /// Total mention tokens across the sequence's entities.
    pub n_mention_tokens: usize,
    /// Whether the §4.3 visibility mask is applied.
    pub use_visibility: bool,
    /// MLM target positions.
    pub n_mlm_targets: usize,
    /// MER target positions.
    pub n_mer_targets: usize,
    /// MER candidate-set size.
    pub n_candidates: usize,
}

/// Outcome of a clean plan check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanReport {
    /// Linearized sequence length.
    pub seq_len: usize,
    /// Symbolic ops replayed.
    pub n_ops: usize,
    /// Largest intermediate tensor, in elements (not allocated).
    pub peak_elements: usize,
}

fn bad(field: &'static str, detail: String) -> AuditError {
    AuditError::BadConfig { field, detail }
}

/// Validate the plan's scalar fields before replaying any ops.
fn check_plan_fields(p: &ModelPlan) -> Result<(), AuditError> {
    if p.n_layers == 0 {
        return Err(bad("n_layers", "encoder needs at least one block".into()));
    }
    if p.d_model == 0 || p.d_intermediate == 0 {
        return Err(bad("d_model/d_intermediate", "hidden sizes must be positive".into()));
    }
    if p.n_heads == 0 || !p.d_model.is_multiple_of(p.n_heads) {
        return Err(bad(
            "d_model % n_heads",
            format!("d_model {} not divisible by n_heads {}", p.d_model, p.n_heads),
        ));
    }
    if p.n_words == 0 {
        return Err(bad("n_words", "empty word vocabulary".into()));
    }
    if p.max_position == 0 {
        return Err(bad("max_position", "position table cannot be empty".into()));
    }
    if p.n_tokens + p.n_seq_entities == 0 {
        return Err(bad("sequence", "a plan needs tokens or entities".into()));
    }
    if p.n_mlm_targets > p.n_tokens {
        return Err(bad(
            "n_mlm_targets",
            format!("{} MLM targets but only {} tokens", p.n_mlm_targets, p.n_tokens),
        ));
    }
    if p.n_mer_targets > p.n_seq_entities {
        return Err(bad(
            "n_mer_targets",
            format!("{} MER targets but only {} entities", p.n_mer_targets, p.n_seq_entities),
        ));
    }
    if p.n_mer_targets > 0 && p.n_candidates == 0 {
        return Err(bad("n_candidates", "MER targets need a non-empty candidate set".into()));
    }
    Ok(())
}

/// Symbolically execute the full forward pass described by `plan`.
///
/// Mirrors `TurlModel::embed` / `encode` / `mlm_logits` / `mer_logits`
/// op for op; any dimension that the runtime would assert on surfaces
/// here as a typed [`AuditError`] naming the op and the offending dims.
pub fn check_model_plan(plan: &ModelPlan) -> Result<PlanReport, AuditError> {
    check_plan_fields(plan)?;
    let p = *plan;
    let d = p.d_model;
    let n = p.n_tokens + p.n_seq_entities;
    let mut f = ShapeFlow::new();

    // Embedding tables, as shapes only.
    let word_emb = f.source(vec![p.n_words, d]);
    let token_type_emb = f.source(vec![2, d]);
    let pos_emb = f.source(vec![p.max_position, d]);
    let ent_emb = f.source(vec![p.n_entities + 1, d]);
    let ent_type_emb = f.source(vec![3, d]);

    let mut parts = Vec::new();
    if p.n_tokens > 0 {
        // Worst-case gather indices exercise the upper bound of each table.
        let w = f.index_select0(word_emb, &vec![p.n_words - 1; p.n_tokens])?;
        let t = f.index_select0(token_type_emb, &vec![1; p.n_tokens])?;
        // Runtime clamps positions to max_position - 1; mirror the clamp.
        let pos = f.index_select0(pos_emb, &vec![p.max_position - 1; p.n_tokens])?;
        let wt = f.add(w, t)?;
        parts.push(f.add(wt, pos)?);
    }
    if p.n_seq_entities > 0 {
        let ee = f.index_select0(ent_emb, &vec![p.n_entities; p.n_seq_entities])?;
        let em = if p.n_mention_tokens > 0 {
            let rows = f.index_select0(word_emb, &vec![p.n_words - 1; p.n_mention_tokens])?;
            let avg = f.source(vec![p.n_seq_entities, p.n_mention_tokens]);
            f.matmul(avg, rows)?
        } else {
            f.source(vec![p.n_seq_entities, d])
        };
        let cat = f.concat_cols(&[ee, em])?;
        let fused = f.linear(cat, 2 * d, d)?;
        let te = f.index_select0(ent_type_emb, &vec![2; p.n_seq_entities])?;
        parts.push(f.add(fused, te)?);
    }
    let x = if parts.len() == 1 { parts[0] } else { f.concat_rows(&parts)? };
    let gamma = f.source(vec![d]);
    let beta = f.source(vec![d]);
    let mut h = f.layer_norm(x, gamma, beta)?;

    let mask = if p.use_visibility { Some(f.source(vec![n, n])) } else { None };
    for _ in 0..p.n_layers {
        let att = f.masked_attention(h, p.n_heads, mask)?;
        let res1 = f.add(h, att)?;
        let (g1, b1) = (f.source(vec![d]), f.source(vec![d]));
        let h1 = f.layer_norm(res1, g1, b1)?;
        let ff1 = f.linear(h1, d, p.d_intermediate)?;
        let act = f.unary("gelu", ff1);
        let ff2 = f.linear(act, p.d_intermediate, d)?;
        let res2 = f.add(h1, ff2)?;
        let (g2, b2) = (f.source(vec![d]), f.source(vec![d]));
        h = f.layer_norm(res2, g2, b2)?;
    }

    if p.n_mlm_targets > 0 {
        // MLM rows index token positions (< n_tokens ≤ n).
        let sel = f.index_select0(h, &vec![p.n_tokens - 1; p.n_mlm_targets])?;
        let proj = f.linear(sel, d, d)?;
        let logits = f.matmul_nt(proj, word_emb)?;
        f.cross_entropy(logits, p.n_mlm_targets, Some(p.n_words - 1))?;
    }
    if p.n_mer_targets > 0 {
        // MER rows index entity positions (≥ n_tokens, < n).
        let sel = f.index_select0(h, &vec![n - 1; p.n_mer_targets])?;
        let proj = f.linear(sel, d, d)?;
        // Candidate ids are shifted by one past the [MASK] row.
        let cand = f.index_select0(ent_emb, &vec![p.n_entities; p.n_candidates])?;
        let logits = f.matmul_nt(proj, cand)?;
        f.cross_entropy(logits, p.n_mer_targets, Some(p.n_candidates - 1))?;
    }

    Ok(PlanReport { seq_len: n, n_ops: f.n_ops(), peak_elements: f.peak_elements() })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's TinyBERT configuration at a realistic sequence size.
    fn paper_plan() -> ModelPlan {
        ModelPlan {
            n_layers: 4,
            d_model: 312,
            d_intermediate: 1200,
            n_heads: 12,
            n_words: 30522,
            n_entities: 926135,
            max_position: 64,
            n_tokens: 24,
            n_seq_entities: 20,
            n_mention_tokens: 40,
            use_visibility: true,
            n_mlm_targets: 5,
            n_mer_targets: 12,
            n_candidates: 64,
        }
    }

    #[test]
    fn paper_configuration_checks_clean() {
        let report = check_model_plan(&paper_plan()).expect("paper config is valid");
        assert_eq!(report.seq_len, 44);
        // Four blocks plus embedding and both heads: a real tape.
        assert!(report.n_ops > 50);
        // The entity table [926136, 312] dominates the symbolic peak.
        assert!(report.peak_elements >= (926135 + 1) * 312);
    }

    #[test]
    fn indivisible_heads_fail_before_any_ops() {
        let plan = ModelPlan { n_heads: 5, ..paper_plan() };
        match check_model_plan(&plan).expect_err("312 % 5 != 0") {
            AuditError::BadConfig { field, .. } => assert_eq!(field, "d_model % n_heads"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn too_many_targets_fail() {
        let plan = ModelPlan { n_mlm_targets: 25, ..paper_plan() };
        assert!(matches!(
            check_model_plan(&plan),
            Err(AuditError::BadConfig { field: "n_mlm_targets", .. })
        ));
        let plan = ModelPlan { n_mer_targets: 21, ..paper_plan() };
        assert!(matches!(
            check_model_plan(&plan),
            Err(AuditError::BadConfig { field: "n_mer_targets", .. })
        ));
    }

    #[test]
    fn mer_without_candidates_fails() {
        let plan = ModelPlan { n_candidates: 0, ..paper_plan() };
        assert!(matches!(
            check_model_plan(&plan),
            Err(AuditError::BadConfig { field: "n_candidates", .. })
        ));
    }

    #[test]
    fn token_only_and_entity_only_sequences_check() {
        let t =
            ModelPlan { n_seq_entities: 0, n_mention_tokens: 0, n_mer_targets: 0, ..paper_plan() };
        assert!(check_model_plan(&t).is_ok());
        let e = ModelPlan { n_tokens: 0, n_mlm_targets: 0, ..paper_plan() };
        assert!(check_model_plan(&e).is_ok());
        let empty = ModelPlan { n_tokens: 0, n_seq_entities: 0, ..t };
        assert!(check_model_plan(&empty).is_err());
    }

    #[test]
    fn empty_mentions_are_tolerated() {
        let plan = ModelPlan { n_mention_tokens: 0, ..paper_plan() };
        assert!(check_model_plan(&plan).is_ok());
    }
}
