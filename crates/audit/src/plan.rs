//! Symbolic validation and static analysis of a full TURL forward plan.
//!
//! [`analyze_model_plan`] lowers the plan to the typed dataflow IR
//! ([`crate::ir`]), runs value-range abstract interpretation over it
//! ([`crate::range`]) and plans the intermediate-buffer arena
//! ([`crate::liveness`]) — all from a config, without allocating a single
//! model-sized tensor. [`check_model_plan`] remains the original thin
//! entry point: it returns the [`PlanReport`] when every invariant is
//! proven and the first typed [`AuditError`] otherwise, so a
//! misconfigured model still fails in microseconds instead of panicking
//! deep inside a training step.

use crate::error::AuditError;
use crate::ir::{lower_model_plan, Ir};
use crate::liveness::{plan_arena, ArenaPlan};
use crate::range::ValueRange;

/// Numeric metadata the value-range analysis interprets a plan under:
/// everything about the model's arithmetic that is not a shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanNumerics {
    /// Layer-norm variance epsilon (`turl_nn::LayerNorm`).
    pub ln_eps: f64,
    /// Hard magnitude bound on embedding-table initialization. The
    /// default is the Box–Muller sampler's guarantee for the BERT-style
    /// `N(0, 0.02)` init (`turl_tensor::normal_init_bound`).
    pub embed_init_bound: f64,
    /// Additive penalty on visibility-masked attention pairs.
    pub mask_penalty: f64,
}

impl Default for PlanNumerics {
    fn default() -> Self {
        Self {
            ln_eps: 1e-5,
            embed_init_bound: f64::from(turl_tensor::normal_init_bound(0.02)),
            mask_penalty: -1e9,
        }
    }
}

/// Structural description of one forward pass, independent of weights.
///
/// `turl-core` adapts a `TurlConfig` plus corpus statistics into this
/// struct; keeping it plain data avoids a dependency cycle between the
/// model crate and the auditor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPlan {
    /// Encoder depth `N`.
    pub n_layers: usize,
    /// Hidden size `d`.
    pub d_model: usize,
    /// Feed-forward inner size `d_i`.
    pub d_intermediate: usize,
    /// Attention heads `h`.
    pub n_heads: usize,
    /// Word vocabulary size.
    pub n_words: usize,
    /// Entity vocabulary size (excluding the `[MASK]` row).
    pub n_entities: usize,
    /// Position embedding table size.
    pub max_position: usize,
    /// Token elements in the sequence being planned.
    pub n_tokens: usize,
    /// Entity elements in the sequence being planned.
    pub n_seq_entities: usize,
    /// Total mention tokens across the sequence's entities.
    pub n_mention_tokens: usize,
    /// Whether the §4.3 visibility mask is applied.
    pub use_visibility: bool,
    /// MLM target positions.
    pub n_mlm_targets: usize,
    /// MER target positions.
    pub n_mer_targets: usize,
    /// MER candidate-set size.
    pub n_candidates: usize,
    /// Init bounds, eps, and mask penalty for the value-range analysis.
    pub numerics: PlanNumerics,
}

/// Outcome of a clean plan check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanReport {
    /// Linearized sequence length.
    pub seq_len: usize,
    /// IR nodes (sources + computed ops).
    pub n_ops: usize,
    /// Largest single tensor, in elements (parameters included; not
    /// allocated).
    pub peak_elements: usize,
    /// Peak *intermediate* memory of one forward pass in bytes, from the
    /// liveness-planned arena (parameters excluded — they live in the
    /// store, not the per-step arena).
    pub peak_bytes: usize,
    /// How many times over the arena is reused across the pass
    /// (`total intermediate bytes / peak_bytes`).
    pub reuse_factor: f64,
}

/// Everything the static analyses derive from one plan.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The lowered op graph.
    pub ir: Ir,
    /// Abstract value per IR tensor (same indexing as the IR tape).
    pub ranges: Vec<ValueRange>,
    /// Every invariant the range analysis could not prove, in tape
    /// order. Empty for a healthy configuration.
    pub errors: Vec<AuditError>,
    /// Liveness-planned intermediate arena.
    pub arena: ArenaPlan,
    /// Provable upper bound on the attention weight any visibility-masked
    /// pair can receive (see [`crate::range::RangeAnalysis`]); `None`
    /// without a mask.
    pub masked_weight_bound: Option<f64>,
    /// Headline numbers.
    pub report: PlanReport,
}

fn bad(field: &'static str, detail: String) -> AuditError {
    AuditError::BadConfig { field, detail }
}

/// Validate the plan's scalar fields before replaying any ops.
pub(crate) fn check_plan_fields(p: &ModelPlan) -> Result<(), AuditError> {
    if p.n_layers == 0 {
        return Err(bad("n_layers", "encoder needs at least one block".into()));
    }
    if p.d_model == 0 || p.d_intermediate == 0 {
        return Err(bad("d_model/d_intermediate", "hidden sizes must be positive".into()));
    }
    if p.n_heads == 0 || !p.d_model.is_multiple_of(p.n_heads) {
        return Err(bad(
            "d_model % n_heads",
            format!("d_model {} not divisible by n_heads {}", p.d_model, p.n_heads),
        ));
    }
    if p.n_words == 0 {
        return Err(bad("n_words", "empty word vocabulary".into()));
    }
    if p.max_position == 0 {
        return Err(bad("max_position", "position table cannot be empty".into()));
    }
    if p.n_tokens + p.n_seq_entities == 0 {
        return Err(bad("sequence", "a plan needs tokens or entities".into()));
    }
    if p.n_mlm_targets > p.n_tokens {
        return Err(bad(
            "n_mlm_targets",
            format!("{} MLM targets but only {} tokens", p.n_mlm_targets, p.n_tokens),
        ));
    }
    if p.n_mer_targets > p.n_seq_entities {
        return Err(bad(
            "n_mer_targets",
            format!("{} MER targets but only {} entities", p.n_mer_targets, p.n_seq_entities),
        ));
    }
    if p.n_mer_targets > 0 && p.n_candidates == 0 {
        return Err(bad("n_candidates", "MER targets need a non-empty candidate set".into()));
    }
    Ok(())
}

/// Run every static analysis over `plan`: lower to IR, abstract-interpret
/// value ranges, and plan the intermediate arena.
///
/// Returns `Err` only for *structural* failures (invalid fields, shapes
/// that cannot combine). Unprovable numeric invariants — NaN
/// reachability, unbounded activations, degenerate normalizers — are
/// returned inside [`PlanAnalysis::errors`] so callers can inspect the
/// per-tensor ranges of a deliberately degenerate configuration instead
/// of losing everything to the first error.
pub fn analyze_model_plan(plan: &ModelPlan) -> Result<PlanAnalysis, AuditError> {
    analyze_model_plan_with(plan, &[])
}

/// [`analyze_model_plan`] with per-source range overrides (see
/// [`crate::analyze_ranges_with`]): the dtype-aware entry point. Callers
/// holding a quantized parameter set pass `(source label,
/// quantized_range(max_scale))` pairs so every downstream proof covers
/// the int8 forward's actual value envelope.
pub fn analyze_model_plan_with(
    plan: &ModelPlan,
    overrides: &[(String, crate::range::ValueRange)],
) -> Result<PlanAnalysis, AuditError> {
    check_plan_fields(plan)?;
    let ir = lower_model_plan(plan)?;
    let ranges = crate::range::analyze_ranges_with(&ir, overrides);
    let arena = plan_arena(&ir);
    let report = PlanReport {
        seq_len: plan.n_tokens + plan.n_seq_entities,
        n_ops: ir.len(),
        peak_elements: ir.peak_elements(),
        peak_bytes: arena.peak_bytes,
        reuse_factor: arena.reuse_factor,
    };
    Ok(PlanAnalysis {
        ranges: ranges.ranges,
        errors: ranges.errors,
        masked_weight_bound: ranges.masked_weight_bound,
        arena,
        ir,
        report,
    })
}

/// Symbolically execute and verify the full forward pass described by
/// `plan`.
///
/// Thin wrapper over [`analyze_model_plan`] preserving the original
/// contract: any dimension the runtime would assert on *and* any numeric
/// invariant the abstract interpreter cannot prove surfaces as a typed
/// [`AuditError`]; a clean plan yields the [`PlanReport`].
pub fn check_model_plan(plan: &ModelPlan) -> Result<PlanReport, AuditError> {
    let analysis = analyze_model_plan(plan)?;
    if let Some(e) = analysis.errors.first() {
        return Err(e.clone());
    }
    Ok(analysis.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's TinyBERT configuration at a realistic sequence size.
    fn paper_plan() -> ModelPlan {
        ModelPlan {
            n_layers: 4,
            d_model: 312,
            d_intermediate: 1200,
            n_heads: 12,
            n_words: 30522,
            n_entities: 926135,
            max_position: 64,
            n_tokens: 24,
            n_seq_entities: 20,
            n_mention_tokens: 40,
            use_visibility: true,
            n_mlm_targets: 5,
            n_mer_targets: 12,
            n_candidates: 64,
            numerics: PlanNumerics::default(),
        }
    }

    #[test]
    fn paper_configuration_checks_clean() {
        let report = check_model_plan(&paper_plan()).expect("paper config is valid");
        assert_eq!(report.seq_len, 44);
        // Four blocks plus embedding and both heads: a real tape.
        assert!(report.n_ops > 50);
        // The entity table [926136, 312] dominates the symbolic peak.
        assert!(report.peak_elements >= (926135 + 1) * 312);
        // Liveness finds real buffer reuse across the four blocks.
        assert!(report.reuse_factor > 1.0, "reuse {}", report.reuse_factor);
        assert!(report.peak_bytes > 0);
    }

    #[test]
    fn analysis_proves_paper_ranges_finite_and_nan_free() {
        let a = analyze_model_plan(&paper_plan()).expect("paper plan analyzes");
        assert!(a.errors.is_empty(), "unexpected: {:?}", a.errors);
        for (node, range) in a.ir.nodes().iter().zip(&a.ranges) {
            assert!(!range.can_be_nan, "NaN reachable at `{}`", node.label);
            assert!(!range.can_be_inf, "`{}` escapes f32: {range:?}", node.label);
        }
        // Masked logits provably vanish: even before dropout, a §4.3-masked
        // pair's softmax weight is bounded by exp(-1e9 + O(1e6)) ≈ 0.
        let bound = a.masked_weight_bound.expect("visibility mask present");
        assert_eq!(bound, 0.0, "exp(-1e9 + small) underflows to exactly 0");
        // Arena strictly beats allocate-everything.
        assert!(a.arena.peak_bytes < a.arena.total_bytes);
    }

    #[test]
    fn quantized_overrides_thread_through_the_analysis() {
        let plan = paper_plan();
        // A realistic post-training scale: the word embedding's values
        // dequantize into ±127·0.01 = ±1.27 — the proof must pick the
        // override up at the source and stay clean downstream.
        let tight = vec![("word_emb".to_string(), crate::range::quantized_range(0.01))];
        let a = analyze_model_plan_with(&plan, &tight).expect("plan analyzes");
        assert!(a.errors.is_empty(), "unexpected: {:?}", a.errors);
        let idx = a.ir.nodes().iter().position(|n| n.label == "word_emb").unwrap();
        assert!(a.ranges[idx].hi <= 1.27 + 1e-9, "range {:?}", a.ranges[idx]);
        assert!(a.ranges[idx].lo >= -1.27 - 1e-9);
        // An absurd scale must break the proofs, not silently pass:
        // 127·1e37 ≫ f32::MAX is an unbounded activation at the source.
        let huge = vec![("word_emb".to_string(), crate::range::quantized_range(1e37))];
        let b = analyze_model_plan_with(&plan, &huge).expect("still structurally valid");
        assert!(
            b.errors.iter().any(|e| matches!(e, AuditError::UnboundedActivation { .. })),
            "expected UnboundedActivation, got {:?}",
            b.errors
        );
        // Labels matching no source are ignored, not an error.
        let stray = vec![("no_such_param".to_string(), crate::range::quantized_range(0.5))];
        let c = analyze_model_plan_with(&plan, &stray).expect("plan analyzes");
        assert!(c.errors.is_empty());
    }

    #[test]
    fn zero_eps_is_a_degenerate_normalizer_not_a_panic() {
        let mut plan = paper_plan();
        plan.numerics.ln_eps = 0.0;
        match check_model_plan(&plan).expect_err("eps = 0 cannot be proven safe") {
            AuditError::DegenerateNormalizer { tensor, eps } => {
                assert_eq!(eps, 0.0);
                assert!(tensor.contains("ln_embed"), "first degenerate norm is `{tensor}`");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn huge_init_bound_is_an_unbounded_activation() {
        let mut plan = paper_plan();
        // 2e38 + 2e38 escapes f32::MAX ≈ 3.4e38 at the very first add.
        plan.numerics.embed_init_bound = 2e38;
        assert!(matches!(check_model_plan(&plan), Err(AuditError::UnboundedActivation { .. })));
    }

    #[test]
    fn infinite_mask_penalty_makes_nan_reachable_at_softmax() {
        let mut plan = paper_plan();
        // This is exactly why the runtime uses -1e9 instead of -inf: a row
        // whose visible set is empty would softmax all--inf logits into
        // exp(-inf + inf) = NaN. The analysis cannot prove row-level
        // visibility from shapes alone, so -inf penalties are rejected.
        plan.numerics.mask_penalty = f64::NEG_INFINITY;
        match check_model_plan(&plan).expect_err("-inf mask penalty is unprovable") {
            AuditError::NanReachable { op, tensor } => {
                assert_eq!(op, "softmax");
                assert!(tensor.contains("block0"), "first NaN origin is `{tensor}`");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn indivisible_heads_fail_before_any_ops() {
        let plan = ModelPlan { n_heads: 5, ..paper_plan() };
        match check_model_plan(&plan).expect_err("312 % 5 != 0") {
            AuditError::BadConfig { field, .. } => assert_eq!(field, "d_model % n_heads"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn too_many_targets_fail() {
        let plan = ModelPlan { n_mlm_targets: 25, ..paper_plan() };
        assert!(matches!(
            check_model_plan(&plan),
            Err(AuditError::BadConfig { field: "n_mlm_targets", .. })
        ));
        let plan = ModelPlan { n_mer_targets: 21, ..paper_plan() };
        assert!(matches!(
            check_model_plan(&plan),
            Err(AuditError::BadConfig { field: "n_mer_targets", .. })
        ));
    }

    #[test]
    fn mer_without_candidates_fails() {
        let plan = ModelPlan { n_candidates: 0, ..paper_plan() };
        assert!(matches!(
            check_model_plan(&plan),
            Err(AuditError::BadConfig { field: "n_candidates", .. })
        ));
    }

    #[test]
    fn token_only_and_entity_only_sequences_check() {
        let t =
            ModelPlan { n_seq_entities: 0, n_mention_tokens: 0, n_mer_targets: 0, ..paper_plan() };
        assert!(check_model_plan(&t).is_ok());
        let e = ModelPlan { n_tokens: 0, n_mlm_targets: 0, ..paper_plan() };
        assert!(check_model_plan(&e).is_ok());
        let empty = ModelPlan { n_tokens: 0, n_seq_entities: 0, ..t };
        assert!(check_model_plan(&empty).is_err());
    }

    #[test]
    fn empty_mentions_are_tolerated() {
        let plan = ModelPlan { n_mention_tokens: 0, ..paper_plan() };
        assert!(check_model_plan(&plan).is_ok());
    }
}
