//! Typed audit violations.

use std::fmt;

/// A violation found by one of the auditors.
///
/// Every variant carries the operation or structure where the violation
/// was detected plus the offending dimensions/indices, so a failure
/// message pinpoints the bug without re-running anything.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// An operation received tensors whose shapes cannot combine.
    ShapeMismatch {
        /// Mirrored graph operation (e.g. `matmul`, `concat_cols`).
        op: &'static str,
        /// Shapes of the operands, in order.
        shapes: Vec<Vec<usize>>,
        /// What specifically failed (e.g. `inner dims 312 vs 300`).
        detail: String,
    },
    /// An index-based gather refers past the end of its table.
    IndexOutOfRange {
        /// Mirrored graph operation (e.g. `index_select0`).
        op: &'static str,
        /// The offending index.
        index: usize,
        /// Number of rows actually available.
        len: usize,
    },
    /// A model hyper-parameter combination is structurally invalid.
    BadConfig {
        /// Configuration field (e.g. `d_model % n_heads`).
        field: &'static str,
        /// Why it is invalid.
        detail: String,
    },
    /// The visibility matrix is not symmetric at `(i, j)`.
    AsymmetricVisibility {
        /// Row where `visible(i, j) != visible(j, i)`.
        i: usize,
        /// Column of the asymmetric pair.
        j: usize,
    },
    /// A pair is visible that §4.3 requires to be masked.
    OverVisible {
        /// Sequence index of the attending element.
        i: usize,
        /// Sequence index of the attended element.
        j: usize,
        /// Description of element `i` (e.g. `header(col 0)`).
        a: String,
        /// Description of element `j`.
        b: String,
    },
    /// A pair is masked that §4.3 requires to be visible.
    UnderVisible {
        /// Sequence index of the attending element.
        i: usize,
        /// Sequence index of the attended element.
        j: usize,
        /// Description of element `i`.
        a: String,
        /// Description of element `j`.
        b: String,
    },
    /// An additive attention mask holds a value that is neither `0`
    /// (visible) nor a large negative number (masked).
    BadMaskValue {
        /// Row of the offending entry.
        i: usize,
        /// Column of the offending entry.
        j: usize,
        /// The entry itself.
        value: f32,
    },
    /// A §4.4 masking ratio is outside its valid open interval.
    RatioOutOfRange {
        /// Configuration field (e.g. `mer_mention_keep_share`).
        field: &'static str,
        /// The configured value.
        value: f64,
        /// Inclusive-exclusive description of the valid range.
        expected: &'static str,
    },
    /// A tape node's parent does not precede it (tape order broken).
    TapeOrder {
        /// Index of the child node.
        node: usize,
        /// Index of the offending parent.
        parent: usize,
    },
    /// A node's accumulated gradient has a different shape than its value.
    GradShapeMismatch {
        /// Index of the node.
        node: usize,
        /// Shape of the forward value.
        value: Vec<usize>,
        /// Shape of the accumulated gradient.
        grad: Vec<usize>,
    },
    /// A gradient-requiring leaf is referenced by no operation, so it can
    /// never receive a gradient.
    OrphanGradLeaf {
        /// Index of the orphaned leaf.
        node: usize,
    },
    /// A leaf tensor contains a NaN or infinity.
    NonFiniteLeaf {
        /// Index of the leaf node.
        node: usize,
        /// Flat element index of the first non-finite value.
        index: usize,
        /// The non-finite value found.
        value: f32,
    },
    /// A `--metrics-out` stream holds a line that is not a schema-valid
    /// event (bad JSON, or reserved fields missing/mistyped).
    MetricsSchema {
        /// Parser message, naming the 1-based line.
        detail: String,
    },
    /// A metrics stream recorded no events or no spans — the
    /// instrumentation layer was silently dead.
    DeadInstrumentation {
        /// What exactly was missing.
        detail: String,
    },
    /// Value-range analysis found an op whose output may contain NaN
    /// even under the proven pre-conditions (init bounds + config).
    NanReachable {
        /// IR op kind where NaN first becomes reachable (e.g. `softmax`).
        op: &'static str,
        /// Label of the IR tensor whose values may be NaN.
        tensor: String,
    },
    /// Value-range analysis found an activation whose interval escapes
    /// the finite `f32` range (overflow to infinity is reachable).
    UnboundedActivation {
        /// Label of the IR tensor whose magnitude is unbounded.
        tensor: String,
        /// Lower end of the inferred interval.
        lo: f64,
        /// Upper end of the inferred interval.
        hi: f64,
    },
    /// A normalization op cannot prove its denominator nonzero: layer
    /// norm with `eps <= 0` divides by zero on a constant row.
    DegenerateNormalizer {
        /// Label of the IR tensor produced by the degenerate op.
        tensor: String,
        /// The configured epsilon that fails to bound the denominator.
        eps: f64,
    },
    /// An observed §4.4 mask-selection ratio drifted beyond tolerance
    /// from its configured target.
    MaskRatioDrift {
        /// Which ratio (`mlm` or `mer`).
        field: &'static str,
        /// Observed selected/candidates ratio.
        observed: f64,
        /// Configured target (0.20 / 0.60 at paper defaults).
        target: f64,
        /// Absolute tolerance the drift exceeded.
        tolerance: f64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::ShapeMismatch { op, shapes, detail } => {
                write!(f, "shape mismatch in `{op}` over {shapes:?}: {detail}")
            }
            AuditError::IndexOutOfRange { op, index, len } => {
                write!(f, "index {index} out of range in `{op}` (only {len} rows)")
            }
            AuditError::BadConfig { field, detail } => {
                write!(f, "invalid configuration `{field}`: {detail}")
            }
            AuditError::AsymmetricVisibility { i, j } => {
                write!(f, "visibility matrix asymmetric at ({i}, {j})")
            }
            AuditError::OverVisible { i, j, a, b } => {
                write!(f, "visibility leak: {a} (seq {i}) must not see {b} (seq {j})")
            }
            AuditError::UnderVisible { i, j, a, b } => {
                write!(f, "visibility hole: {a} (seq {i}) must see {b} (seq {j})")
            }
            AuditError::BadMaskValue { i, j, value } => {
                write!(f, "additive mask entry ({i}, {j}) = {value} is neither 0 nor ≤ -1e8")
            }
            AuditError::RatioOutOfRange { field, value, expected } => {
                write!(f, "masking ratio `{field}` = {value} outside {expected}")
            }
            AuditError::TapeOrder { node, parent } => {
                write!(f, "tape order violated: node {node} lists parent {parent} ≥ itself")
            }
            AuditError::GradShapeMismatch { node, value, grad } => {
                write!(f, "node {node}: grad shape {grad:?} != value shape {value:?}")
            }
            AuditError::OrphanGradLeaf { node } => {
                write!(f, "leaf {node} requires grad but is used by no operation")
            }
            AuditError::NonFiniteLeaf { node, index, value } => {
                write!(f, "leaf {node} holds non-finite value {value} at element {index}")
            }
            AuditError::MetricsSchema { detail } => {
                write!(f, "metrics stream schema violation: {detail}")
            }
            AuditError::DeadInstrumentation { detail } => {
                write!(f, "instrumentation dead: {detail}")
            }
            AuditError::NanReachable { op, tensor } => {
                write!(f, "NaN reachable at `{op}` output `{tensor}`")
            }
            AuditError::UnboundedActivation { tensor, lo, hi } => {
                write!(f, "activation `{tensor}` unbounded: range [{lo:.3e}, {hi:.3e}] escapes f32")
            }
            AuditError::DegenerateNormalizer { tensor, eps } => {
                write!(
                    f,
                    "degenerate normalizer at `{tensor}`: eps = {eps} cannot prove a nonzero \
                     denominator"
                )
            }
            AuditError::MaskRatioDrift { field, observed, target, tolerance } => {
                write!(
                    f,
                    "mask ratio `{field}` drifted: observed {observed:.4} vs target {target:.2} \
                     (tolerance {tolerance:.4})"
                )
            }
        }
    }
}

impl std::error::Error for AuditError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_op_and_dims() {
        let e = AuditError::ShapeMismatch {
            op: "matmul",
            shapes: vec![vec![2, 3], vec![4, 5]],
            detail: "inner dims 3 vs 4".into(),
        };
        let text = e.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("3 vs 4"));
    }

    #[test]
    fn display_locates_visibility_violations() {
        let e = AuditError::OverVisible {
            i: 1,
            j: 5,
            a: "header(col 0)".into(),
            b: "cell(0, 1)".into(),
        };
        let text = e.to_string();
        assert!(text.contains("header(col 0)"));
        assert!(text.contains("seq 5"));
    }
}
