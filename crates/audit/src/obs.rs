//! Metrics-log auditor: validates a recorded `--metrics-out` JSONL
//! stream against the event schema and the §4.4 masking contract.
//!
//! The other auditors check the program before or while it runs; this
//! one checks what the program *said about itself*. A silently-dead
//! instrumentation layer (zero events, zero spans) is as much a defect
//! as a shape mismatch — dashboards built on the stream would report a
//! healthy-looking nothing — so `turl audit` runs a short instrumented
//! training loop and feeds the resulting file through
//! [`check_metrics_log`].

use crate::AuditError;

/// What a schema-valid metrics stream contained.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsLogReport {
    /// Schema-valid events parsed from the stream.
    pub n_events: usize,
    /// `step` events among them.
    pub n_steps: usize,
    /// `span` events among them.
    pub n_spans: usize,
    /// Observed MLM token-masking ratio, when any candidates were seen.
    pub mlm_observed: Option<f64>,
    /// Observed MER entity-masking ratio, when any candidates were seen.
    pub mer_observed: Option<f64>,
}

/// Parse and digest a `--metrics-out` JSONL stream, enforcing:
///
/// * every line is a schema-valid event (reserved `ev`/`step`/`epoch`/
///   `t_ns` fields present and well-typed);
/// * the stream is alive — at least one event and one span;
/// * the observed §4.4 mask-selection ratios sit within the drift
///   tolerance of their configured targets (2% absolute, widened for
///   small samples where binomial noise alone exceeds it).
pub fn check_metrics_log(text: &str) -> Result<MetricsLogReport, Vec<AuditError>> {
    let events =
        turl_obs::parse_jsonl(text).map_err(|detail| vec![AuditError::MetricsSchema { detail }])?;
    let summary = turl_obs::summarize(&events)
        .map_err(|detail| vec![AuditError::DeadInstrumentation { detail }])?;
    let mut errors = Vec::new();
    for (field, stat) in [("mlm", &summary.mlm), ("mer", &summary.mer)] {
        if stat.drifted() {
            if let Some(observed) = stat.observed() {
                errors.push(AuditError::MaskRatioDrift {
                    field,
                    observed,
                    target: stat.target,
                    tolerance: stat.tolerance(),
                });
            }
        }
    }
    if errors.is_empty() {
        Ok(MetricsLogReport {
            n_events: summary.n_events,
            n_steps: summary.n_steps,
            n_spans: summary.n_spans,
            mlm_observed: summary.mlm.observed(),
            mer_observed: summary.mer.observed(),
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(mlm_selected: u64, mer_selected: u64) -> String {
        format!(
            concat!(
                "{{\"ev\":\"run_start\",\"step\":0,\"epoch\":0,\"t_ns\":1,",
                "\"mlm_target\":0.2,\"mer_target\":0.6}}\n",
                "{{\"ev\":\"step\",\"step\":1,\"epoch\":0,\"t_ns\":2,\"loss\":8.0,",
                "\"mlm_selected\":{},\"mlm_candidates\":1000,",
                "\"mer_selected\":{},\"mer_candidates\":1000}}\n",
                "{{\"ev\":\"span\",\"step\":1,\"epoch\":0,\"t_ns\":3,",
                "\"name\":\"epoch\",\"ns\":100}}\n",
            ),
            mlm_selected, mer_selected
        )
    }

    #[test]
    fn valid_stream_passes_and_reports_ratios() {
        let report = check_metrics_log(&stream(205, 598)).unwrap();
        assert_eq!(report.n_events, 3);
        assert_eq!(report.n_steps, 1);
        assert_eq!(report.n_spans, 1);
        assert!((report.mlm_observed.unwrap() - 0.205).abs() < 1e-12);
        assert!((report.mer_observed.unwrap() - 0.598).abs() < 1e-12);
    }

    #[test]
    fn drifted_ratios_are_violations() {
        let errors = check_metrics_log(&stream(400, 600)).unwrap_err();
        assert_eq!(errors.len(), 1);
        match &errors[0] {
            AuditError::MaskRatioDrift { field, observed, target, .. } => {
                assert_eq!(*field, "mlm");
                assert!((observed - 0.4).abs() < 1e-12);
                assert!((target - 0.2).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_schema_violations() {
        let errors = check_metrics_log("{\"ev\":\"x\",\"step\":0}\nnot json\n").unwrap_err();
        assert!(matches!(errors[0], AuditError::MetricsSchema { .. }));
    }

    #[test]
    fn dead_streams_are_rejected() {
        let errors = check_metrics_log("").unwrap_err();
        assert!(matches!(errors[0], AuditError::DeadInstrumentation { .. }));
        // events but no spans: the RAII guards never fired
        let no_spans = "{\"ev\":\"log\",\"step\":0,\"epoch\":0,\"t_ns\":1,\"msg\":\"hi\"}\n";
        let errors = check_metrics_log(no_spans).unwrap_err();
        assert!(matches!(errors[0], AuditError::DeadInstrumentation { .. }));
    }
}
