//! Symbolic shape-flow checking.
//!
//! [`ShapeFlow`] is a zero-allocation twin of `turl_tensor::Graph`: it
//! carries only *shapes* through the same op vocabulary, so an entire
//! model forward pass can be validated from a config without touching a
//! single `f32`. Each mirrored op enforces exactly the precondition the
//! runtime op asserts, but returns a typed [`AuditError`] instead of
//! panicking mid-training.

use crate::error::AuditError;
use turl_tensor::broadcast_shape;

/// Symbolic variable: a handle to a shape on a [`ShapeFlow`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SVar(usize);

/// One symbolic node: the op that produced it and its inferred shape.
#[derive(Debug, Clone)]
struct SNode {
    op: &'static str,
    shape: Vec<usize>,
}

/// A symbolic tape of shapes mirroring `turl_tensor::Graph`.
///
/// Every method corresponds 1:1 to a `Graph` op and performs the same
/// shape validation that op's runtime asserts would, without allocating
/// tensor storage.
#[derive(Debug, Default)]
pub struct ShapeFlow {
    nodes: Vec<SNode>,
}

impl ShapeFlow {
    /// Empty symbolic tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of symbolic ops recorded so far.
    pub fn n_ops(&self) -> usize {
        self.nodes.len()
    }

    /// Inferred shape of a symbolic variable.
    pub fn shape(&self, v: SVar) -> &[usize] {
        &self.nodes[v.0].shape
    }

    /// Name of the op that produced `v`.
    pub fn op(&self, v: SVar) -> &'static str {
        self.nodes[v.0].op
    }

    /// Handle to the node at tape position `i`.
    ///
    /// For lock-step mirrors (e.g. the IR builder) that record one node
    /// per `ShapeFlow` op and address them by shared index.
    ///
    /// # Panics
    /// Panics if `i` is past the end of the tape.
    pub fn var_at(&self, i: usize) -> SVar {
        assert!(i < self.nodes.len(), "no shape-flow node at {i}");
        SVar(i)
    }

    /// Largest single-tensor element count appearing anywhere on the tape.
    ///
    /// This is the symbolic analogue of peak per-tensor memory; it lets a
    /// plan report state how big the intermediates would be without ever
    /// allocating them.
    pub fn peak_elements(&self) -> usize {
        self.nodes.iter().map(|n| n.shape.iter().product::<usize>()).max().unwrap_or(0)
    }

    fn push(&mut self, op: &'static str, shape: Vec<usize>) -> SVar {
        self.nodes.push(SNode { op, shape });
        SVar(self.nodes.len() - 1)
    }

    fn mismatch(&self, op: &'static str, vars: &[SVar], detail: String) -> AuditError {
        AuditError::ShapeMismatch {
            op,
            shapes: vars.iter().map(|&v| self.shape(v).to_vec()).collect(),
            detail,
        }
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    /// Introduce a tensor of the given shape (leaf or constant alike —
    /// gradient flow is irrelevant to shape inference).
    pub fn source(&mut self, shape: Vec<usize>) -> SVar {
        self.push("source", shape)
    }

    // ------------------------------------------------------------------
    // Elementwise (broadcasting)
    // ------------------------------------------------------------------

    fn broadcast_op(&mut self, op: &'static str, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        match broadcast_shape(self.shape(a), self.shape(b)) {
            Ok(shape) => Ok(self.push(op, shape)),
            Err(e) => Err(self.mismatch(op, &[a, b], e.to_string())),
        }
    }

    /// Mirror of `Graph::add` (broadcasting elementwise sum).
    pub fn add(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        self.broadcast_op("add", a, b)
    }

    /// Mirror of `Graph::sub`.
    pub fn sub(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        self.broadcast_op("sub", a, b)
    }

    /// Mirror of `Graph::mul`.
    pub fn mul(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        self.broadcast_op("mul", a, b)
    }

    /// Mirror of `Graph::scale` / `add_scalar` / `neg` and all unary
    /// activations (`relu`, `gelu`, `tanh`, `sigmoid`): shape-preserving.
    pub fn unary(&mut self, op: &'static str, a: SVar) -> SVar {
        let shape = self.shape(a).to_vec();
        self.push(op, shape)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    fn require_rank(&self, op: &'static str, v: SVar, rank: usize) -> Result<&[usize], AuditError> {
        let s = self.shape(v);
        if s.len() != rank {
            return Err(self.mismatch(op, &[v], format!("expected rank {rank}, got {:?}", s)));
        }
        Ok(s)
    }

    /// Mirror of `Graph::matmul`: `[m, k] · [k, n] -> [m, n]`.
    pub fn matmul(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        let sa = self.require_rank("matmul", a, 2)?.to_vec();
        let sb = self.require_rank("matmul", b, 2)?.to_vec();
        if sa[1] != sb[0] {
            return Err(self.mismatch(
                "matmul",
                &[a, b],
                format!("inner dims {} vs {}", sa[1], sb[0]),
            ));
        }
        Ok(self.push("matmul", vec![sa[0], sb[1]]))
    }

    /// Mirror of `Graph::matmul_nt`: `[m, k] · [n, k]ᵀ -> [m, n]`.
    pub fn matmul_nt(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        let sa = self.require_rank("matmul_nt", a, 2)?.to_vec();
        let sb = self.require_rank("matmul_nt", b, 2)?.to_vec();
        if sa[1] != sb[1] {
            return Err(self.mismatch(
                "matmul_nt",
                &[a, b],
                format!("inner dims {} vs {}", sa[1], sb[1]),
            ));
        }
        Ok(self.push("matmul_nt", vec![sa[0], sb[0]]))
    }

    /// Mirror of `Graph::bmm`: `[b, m, k] · [b, k, n] -> [b, m, n]`.
    pub fn bmm(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        let sa = self.require_rank("bmm", a, 3)?.to_vec();
        let sb = self.require_rank("bmm", b, 3)?.to_vec();
        if sa[0] != sb[0] {
            return Err(self.mismatch(
                "bmm",
                &[a, b],
                format!("batch dims {} vs {}", sa[0], sb[0]),
            ));
        }
        if sa[2] != sb[1] {
            return Err(self.mismatch(
                "bmm",
                &[a, b],
                format!("inner dims {} vs {}", sa[2], sb[1]),
            ));
        }
        Ok(self.push("bmm", vec![sa[0], sa[1], sb[2]]))
    }

    /// Mirror of `Graph::bmm_nt`: `[b, m, k] · [b, n, k]ᵀ -> [b, m, n]`.
    pub fn bmm_nt(&mut self, a: SVar, b: SVar) -> Result<SVar, AuditError> {
        let sa = self.require_rank("bmm_nt", a, 3)?.to_vec();
        let sb = self.require_rank("bmm_nt", b, 3)?.to_vec();
        if sa[0] != sb[0] {
            return Err(self.mismatch(
                "bmm_nt",
                &[a, b],
                format!("batch dims {} vs {}", sa[0], sb[0]),
            ));
        }
        if sa[2] != sb[2] {
            return Err(self.mismatch(
                "bmm_nt",
                &[a, b],
                format!("inner dims {} vs {}", sa[2], sb[2]),
            ));
        }
        Ok(self.push("bmm_nt", vec![sa[0], sa[1], sb[1]]))
    }

    /// Mirror of `Graph::permute`: `axes` must be a permutation of `0..rank`.
    pub fn permute(&mut self, a: SVar, axes: &[usize]) -> Result<SVar, AuditError> {
        let s = self.shape(a).to_vec();
        let mut seen = vec![false; s.len()];
        let valid = axes.len() == s.len()
            && axes.iter().all(|&ax| {
                if ax >= s.len() || seen[ax] {
                    false
                } else {
                    seen[ax] = true;
                    true
                }
            });
        if !valid {
            return Err(self.mismatch(
                "permute",
                &[a],
                format!("axes {axes:?} is not a permutation of 0..{}", s.len()),
            ));
        }
        let shape = axes.iter().map(|&ax| s[ax]).collect();
        Ok(self.push("permute", shape))
    }

    /// Mirror of `Graph::reshape`: element counts must agree.
    pub fn reshape(&mut self, a: SVar, shape: Vec<usize>) -> Result<SVar, AuditError> {
        let old: usize = self.shape(a).iter().product();
        let new: usize = shape.iter().product();
        if old != new {
            return Err(self.mismatch(
                "reshape",
                &[a],
                format!("cannot reshape {} elements into {:?} ({} elements)", old, shape, new),
            ));
        }
        Ok(self.push("reshape", shape))
    }

    // ------------------------------------------------------------------
    // Normalisation / reductions
    // ------------------------------------------------------------------

    /// Mirror of `Graph::softmax_last` (shape-preserving, rank ≥ 1).
    pub fn softmax_last(&mut self, a: SVar) -> Result<SVar, AuditError> {
        if self.shape(a).is_empty() {
            return Err(self.mismatch("softmax_last", &[a], "rank 0 tensor".into()));
        }
        Ok(self.unary("softmax_last", a))
    }

    /// Mirror of `Graph::layer_norm`: `gamma`/`beta` must be `[d]` where
    /// `d` is the last dim of `x`.
    pub fn layer_norm(&mut self, x: SVar, gamma: SVar, beta: SVar) -> Result<SVar, AuditError> {
        let sx = self.shape(x).to_vec();
        let Some(&d) = sx.last() else {
            return Err(self.mismatch("layer_norm", &[x], "rank 0 input".into()));
        };
        for (name, v) in [("gamma", gamma), ("beta", beta)] {
            let s = self.shape(v);
            if s != [d] {
                return Err(self.mismatch(
                    "layer_norm",
                    &[x, v],
                    format!("{name} shape {s:?} != [{d}]"),
                ));
            }
        }
        Ok(self.push("layer_norm", sx))
    }

    /// Mirror of `Graph::index_select0`: gathers rows of a rank ≥ 1 tensor.
    pub fn index_select0(&mut self, a: SVar, indices: &[usize]) -> Result<SVar, AuditError> {
        let s = self.shape(a).to_vec();
        if s.is_empty() {
            return Err(self.mismatch("index_select0", &[a], "rank 0 input".into()));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= s[0]) {
            return Err(AuditError::IndexOutOfRange { op: "index_select0", index: bad, len: s[0] });
        }
        let mut shape = s;
        shape[0] = indices.len();
        Ok(self.push("index_select0", shape))
    }

    /// Mirror of `Graph::mean_rows`: `[n, d] -> [d]`.
    pub fn mean_rows(&mut self, a: SVar) -> Result<SVar, AuditError> {
        let s = self.require_rank("mean_rows", a, 2)?.to_vec();
        Ok(self.push("mean_rows", vec![s[1]]))
    }

    /// Mirror of `Graph::sum_all` / `mean_all`: any shape to scalar `[1]`.
    pub fn reduce_all(&mut self, op: &'static str, _a: SVar) -> SVar {
        self.push(op, vec![1])
    }

    /// Mirror of `Graph::concat_cols`: 2-D parts, equal row counts.
    pub fn concat_cols(&mut self, parts: &[SVar]) -> Result<SVar, AuditError> {
        let first = self.require_rank("concat_cols", parts[0], 2)?.to_vec();
        let mut width = first[1];
        for &p in &parts[1..] {
            let s = self.require_rank("concat_cols", p, 2)?;
            if s[0] != first[0] {
                return Err(self.mismatch(
                    "concat_cols",
                    parts,
                    format!("row counts {} vs {}", first[0], s[0]),
                ));
            }
            width += s[1];
        }
        Ok(self.push("concat_cols", vec![first[0], width]))
    }

    /// Mirror of `Graph::concat_rows`: 2-D parts, equal widths.
    pub fn concat_rows(&mut self, parts: &[SVar]) -> Result<SVar, AuditError> {
        let first = self.require_rank("concat_rows", parts[0], 2)?.to_vec();
        let mut rows = first[0];
        for &p in &parts[1..] {
            let s = self.require_rank("concat_rows", p, 2)?;
            if s[1] != first[1] {
                return Err(self.mismatch(
                    "concat_rows",
                    parts,
                    format!("widths {} vs {}", first[1], s[1]),
                ));
            }
            rows += s[0];
        }
        Ok(self.push("concat_rows", vec![rows, first[1]]))
    }

    /// Mirror of `Graph::stack_rows`: 1-D parts of equal length to `[n, d]`.
    pub fn stack_rows(&mut self, parts: &[SVar]) -> Result<SVar, AuditError> {
        let first = self.require_rank("stack_rows", parts[0], 1)?.to_vec();
        for &p in &parts[1..] {
            let s = self.require_rank("stack_rows", p, 1)?;
            if s[0] != first[0] {
                return Err(self.mismatch(
                    "stack_rows",
                    parts,
                    format!("lengths {} vs {}", first[0], s[0]),
                ));
            }
        }
        Ok(self.push("stack_rows", vec![parts.len(), first[0]]))
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mirror of `Graph::cross_entropy`: `[n, c]` logits vs `n` class
    /// targets, each `< c`; yields a scalar `[1]`.
    pub fn cross_entropy(
        &mut self,
        logits: SVar,
        n_targets: usize,
        max_target: Option<usize>,
    ) -> Result<SVar, AuditError> {
        let s = self.require_rank("cross_entropy", logits, 2)?.to_vec();
        if s[0] != n_targets {
            return Err(self.mismatch(
                "cross_entropy",
                &[logits],
                format!("{} logit rows vs {} targets", s[0], n_targets),
            ));
        }
        if let Some(t) = max_target {
            if t >= s[1] {
                return Err(AuditError::IndexOutOfRange {
                    op: "cross_entropy",
                    index: t,
                    len: s[1],
                });
            }
        }
        Ok(self.push("cross_entropy", vec![1]))
    }

    /// Mirror of `Graph::bce_with_logits`: targets must match logits' shape.
    pub fn bce_with_logits(
        &mut self,
        logits: SVar,
        target_shape: &[usize],
    ) -> Result<SVar, AuditError> {
        if self.shape(logits) != target_shape {
            let detail = format!("target shape {target_shape:?} != logits");
            return Err(self.mismatch("bce_with_logits", &[logits], detail));
        }
        Ok(self.push("bce_with_logits", vec![1]))
    }

    // ------------------------------------------------------------------
    // Composites mirroring turl-nn layers
    // ------------------------------------------------------------------

    /// Mirror of `turl_nn::Linear::forward`: `[n, d_in] · W[d_in, d_out] + b`.
    pub fn linear(&mut self, x: SVar, d_in: usize, d_out: usize) -> Result<SVar, AuditError> {
        let w = self.source(vec![d_in, d_out]);
        let b = self.source(vec![d_out]);
        let y = self.matmul(x, w)?;
        self.add(y, b)
    }

    /// Mirror of `turl_nn::MultiHeadAttention::forward` with an optional
    /// additive `[n, n]` mask: the exact reshape/permute/bmm pipeline.
    pub fn masked_attention(
        &mut self,
        x: SVar,
        n_heads: usize,
        mask: Option<SVar>,
    ) -> Result<SVar, AuditError> {
        let s = self.require_rank("attention", x, 2)?.to_vec();
        let (n, d) = (s[0], s[1]);
        if n_heads == 0 || d % n_heads != 0 {
            return Err(AuditError::BadConfig {
                field: "d_model % n_heads",
                detail: format!("d_model {d} not divisible by n_heads {n_heads}"),
            });
        }
        let dh = d / n_heads;
        // q/k/v projections, then split heads: [n, d] -> [n, h, dh] -> [h, n, dh].
        let mut heads = Vec::with_capacity(3);
        for _ in 0..3 {
            let proj = self.linear(x, d, d)?;
            let split = self.reshape(proj, vec![n, n_heads, dh])?;
            heads.push(self.permute(split, &[1, 0, 2])?);
        }
        let (q, k, v) = (heads[0], heads[1], heads[2]);
        let scores = self.bmm_nt(q, k)?; // [h, n, n]
        let scaled = self.unary("scale", scores);
        let attended = match mask {
            Some(m) => {
                let sm = self.shape(m);
                if sm != [n, n] {
                    return Err(self.mismatch(
                        "attention_mask",
                        &[m],
                        format!("mask shape {sm:?} != [{n}, {n}]"),
                    ));
                }
                // [n, n] broadcasts over the head axis of [h, n, n].
                self.add(scaled, m)?
            }
            None => scaled,
        };
        let weights = self.softmax_last(attended)?;
        let ctx = self.bmm(weights, v)?; // [h, n, dh]
        let merged = self.permute(ctx, &[1, 0, 2])?;
        let flat = self.reshape(merged, vec![n, d])?;
        self.linear(flat, d, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_infers_product_shape() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![4, 312]);
        let b = f.source(vec![312, 1200]);
        let c = f.matmul(a, b).expect("shapes compatible");
        assert_eq!(f.shape(c), &[4, 1200]);
    }

    #[test]
    fn matmul_rejects_inner_dim_mismatch() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![4, 312]);
        let b = f.source(vec![300, 1200]);
        let err = f.matmul(a, b).expect_err("inner dims differ");
        match err {
            AuditError::ShapeMismatch { op, shapes, detail } => {
                assert_eq!(op, "matmul");
                assert_eq!(shapes, vec![vec![4, 312], vec![300, 1200]]);
                assert!(detail.contains("312") && detail.contains("300"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn broadcast_add_follows_numpy_rules() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![12, 8, 8]);
        let b = f.source(vec![8, 8]);
        let c = f.add(a, b).expect("broadcastable");
        assert_eq!(f.shape(c), &[12, 8, 8]);

        let bad = f.source(vec![7, 8]);
        assert!(f.add(a, bad).is_err());
    }

    #[test]
    fn permute_validates_axes() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![2, 3, 4]);
        let p = f.permute(a, &[1, 0, 2]).expect("valid permutation");
        assert_eq!(f.shape(p), &[3, 2, 4]);
        assert!(f.permute(a, &[0, 0, 2]).is_err());
        assert!(f.permute(a, &[0, 1]).is_err());
    }

    #[test]
    fn reshape_checks_element_count() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![6, 4]);
        assert!(f.reshape(a, vec![8, 3]).is_ok());
        assert!(f.reshape(a, vec![5, 5]).is_err());
    }

    #[test]
    fn index_select_rejects_out_of_range_rows() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![10, 312]);
        let ok = f.index_select0(a, &[0, 9, 3]).expect("in range");
        assert_eq!(f.shape(ok), &[3, 312]);
        match f.index_select0(a, &[0, 10]).expect_err("row 10 invalid") {
            AuditError::IndexOutOfRange { index, len, .. } => {
                assert_eq!((index, len), (10, 10));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn attention_matches_runtime_pipeline_shape() {
        let mut f = ShapeFlow::new();
        let x = f.source(vec![20, 312]);
        let m = f.source(vec![20, 20]);
        let y = f.masked_attention(x, 12, Some(m)).expect("valid attention");
        assert_eq!(f.shape(y), &[20, 312]);
    }

    #[test]
    fn attention_rejects_indivisible_heads() {
        let mut f = ShapeFlow::new();
        let x = f.source(vec![20, 312]);
        match f.masked_attention(x, 5, None).expect_err("312 % 5 != 0") {
            AuditError::BadConfig { field, .. } => assert_eq!(field, "d_model % n_heads"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn attention_rejects_wrong_mask_shape() {
        let mut f = ShapeFlow::new();
        let x = f.source(vec![20, 312]);
        let m = f.source(vec![19, 20]);
        assert!(f.masked_attention(x, 12, Some(m)).is_err());
    }

    #[test]
    fn cross_entropy_checks_rows_and_target_range() {
        let mut f = ShapeFlow::new();
        let logits = f.source(vec![5, 100]);
        assert!(f.cross_entropy(logits, 5, Some(99)).is_ok());
        assert!(f.cross_entropy(logits, 4, None).is_err());
        assert!(f.cross_entropy(logits, 5, Some(100)).is_err());
    }

    #[test]
    fn concat_and_stack_validate_partner_dims() {
        let mut f = ShapeFlow::new();
        let a = f.source(vec![4, 8]);
        let b = f.source(vec![4, 3]);
        let cat = f.concat_cols(&[a, b]).expect("same rows");
        assert_eq!(f.shape(cat), &[4, 11]);

        let c = f.source(vec![5, 8]);
        assert!(f.concat_cols(&[a, c]).is_err());
        let rows = f.concat_rows(&[a, c]).expect("same width");
        assert_eq!(f.shape(rows), &[9, 8]);

        let v1 = f.source(vec![8]);
        let v2 = f.source(vec![8]);
        let st = f.stack_rows(&[v1, v2]).expect("same length");
        assert_eq!(f.shape(st), &[2, 8]);
    }

    #[test]
    fn peak_elements_tracks_largest_intermediate() {
        let mut f = ShapeFlow::new();
        let x = f.source(vec![20, 312]);
        f.masked_attention(x, 12, None).expect("valid");
        // Largest intermediate in attention at n=20, h=12 is [12, 20, 20].
        assert!(f.peak_elements() >= 12 * 20 * 20);
    }
}
