//! Relational-table data model for the TURL reproduction.
//!
//! Implements §2 of the paper: a table `T = (C, H, E, e_t)` with caption,
//! headers, entity cells and topic entity ([`Table`]); a word-level
//! tokenizer and vocabulary ([`Vocab`]); the linearization of a table into
//! the model's input sequence ([`TableInstance`]); the structure-derived
//! [`VisibilityMatrix`] of §4.3; and corpus statistics (Table 3 of the
//! paper).

#![deny(missing_docs)]

mod linearize;
mod model;
mod stats;
mod tokenizer;
mod visibility;

pub use linearize::{
    EntityItem, EntityPosition, LinearizeConfig, TableInstance, TokenItem, TokenScope,
};
pub use model::{Cell, EntityId, EntityRef, Table};
pub use stats::{CorpusStats, SplitSummary};
pub use tokenizer::{tokenize, Vocab, CLS_TOKEN, MASK_TOKEN, PAD_TOKEN, UNK_TOKEN};
pub use visibility::VisibilityMatrix;
