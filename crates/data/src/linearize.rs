//! Linearization of a table into the model's input sequence (§4.2).
//!
//! "Given a table T = (C, H, E, e_t), we first linearize the input into a
//! sequence of tokens and entity cells by concatenating the table metadata
//! and scanning the table content row by row."

use crate::model::{EntityId, Table};
use crate::tokenizer::Vocab;
use serde::{Deserialize, Serialize};

/// Where a metadata token comes from (drives the type embedding `t` in
/// Eqn. 1 and column-level visibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenScope {
    /// Token of the table caption (page/section title included).
    Caption,
    /// Token of the header of the given column.
    Header(usize),
}

/// One metadata token in the linearized sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenItem {
    /// Vocabulary id.
    pub token: u32,
    /// Caption or header provenance.
    pub scope: TokenScope,
    /// Relative position within its caption/header (`p` in Eqn. 1).
    pub position: usize,
}

/// Where an entity sits in the table (drives the entity type embedding
/// `t_e` in Eqn. 2 and row/column visibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityPosition {
    /// The table's topic entity `e_t`.
    Topic,
    /// A content cell at `(row, col)`.
    Cell {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
}

/// One entity cell in the linearized sequence: linked entity `e^e` plus the
/// token ids of its mention `e^m`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityItem {
    /// The linked entity id.
    pub entity: EntityId,
    /// Token ids of the mention text (possibly empty for very short cells).
    pub mention_tokens: Vec<u32>,
    /// Structural position.
    pub position: EntityPosition,
    /// True when the entity sits in the table's subject column.
    pub is_subject: bool,
}

impl EntityItem {
    /// Entity type index for the type embedding: 0 = topic, 1 = subject,
    /// 2 = object (the paper's three entity-cell types).
    pub fn type_index(&self) -> usize {
        match (self.position, self.is_subject) {
            (EntityPosition::Topic, _) => 0,
            (_, true) => 1,
            (_, false) => 2,
        }
    }
}

/// Truncation limits applied during linearization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearizeConfig {
    /// Maximum caption tokens kept.
    pub max_caption_tokens: usize,
    /// Maximum tokens kept per header.
    pub max_header_tokens: usize,
    /// Maximum content rows scanned.
    pub max_rows: usize,
    /// Maximum tokens kept per entity mention.
    pub max_mention_tokens: usize,
}

impl Default for LinearizeConfig {
    fn default() -> Self {
        Self { max_caption_tokens: 24, max_header_tokens: 6, max_rows: 32, max_mention_tokens: 6 }
    }
}

/// A table converted to the model input sequence: metadata tokens followed
/// by entity cells (topic entity first, then content row by row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableInstance {
    /// Source table id.
    pub table_id: String,
    /// Metadata tokens (caption then headers, in column order).
    pub tokens: Vec<TokenItem>,
    /// Entity cells (topic entity first when present).
    pub entities: Vec<EntityItem>,
}

impl TableInstance {
    /// Linearize a [`Table`]. Unlinked cells are not part of the entity
    /// sequence (the paper's `E` contains linked entity cells).
    pub fn from_table(table: &Table, vocab: &Vocab, cfg: &LinearizeConfig) -> Self {
        let mut tokens = Vec::new();
        for (pos, id) in
            vocab.encode(&table.full_caption()).into_iter().take(cfg.max_caption_tokens).enumerate()
        {
            tokens.push(TokenItem { token: id, scope: TokenScope::Caption, position: pos });
        }
        for (col, header) in table.headers.iter().enumerate() {
            for (pos, id) in
                vocab.encode(header).into_iter().take(cfg.max_header_tokens).enumerate()
            {
                tokens.push(TokenItem { token: id, scope: TokenScope::Header(col), position: pos });
            }
        }
        let mut entities = Vec::new();
        if let Some(topic) = &table.topic_entity {
            entities.push(EntityItem {
                entity: topic.id,
                mention_tokens: vocab
                    .encode(&topic.mention)
                    .into_iter()
                    .take(cfg.max_mention_tokens)
                    .collect(),
                position: EntityPosition::Topic,
                is_subject: false,
            });
        }
        for (row, cells) in table.rows.iter().take(cfg.max_rows).enumerate() {
            for (col, cell) in cells.iter().enumerate() {
                if let Some(e) = &cell.entity {
                    entities.push(EntityItem {
                        entity: e.id,
                        mention_tokens: vocab
                            .encode(&e.mention)
                            .into_iter()
                            .take(cfg.max_mention_tokens)
                            .collect(),
                        position: EntityPosition::Cell { row, col },
                        is_subject: col == table.subject_column,
                    });
                }
            }
        }
        Self { table_id: table.id.clone(), tokens, entities }
    }

    /// Total sequence length (tokens + entity cells).
    pub fn seq_len(&self) -> usize {
        self.tokens.len() + self.entities.len()
    }

    /// Sequence index of entity `i` (entities follow all tokens).
    pub fn entity_seq_index(&self, i: usize) -> usize {
        self.tokens.len() + i
    }

    /// Indices (into `entities`) of cell entities in a given column.
    pub fn entities_in_column(&self, col: usize) -> Vec<usize> {
        self.entities
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.position, EntityPosition::Cell { col: c, .. } if c == col))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices (into `tokens`) of header tokens of a given column.
    pub fn header_tokens_of(&self, col: usize) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.scope == TokenScope::Header(col))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cell, EntityRef};

    fn vocab_for(table: &Table) -> Vocab {
        let mut texts = vec![table.full_caption()];
        texts.extend(table.headers.clone());
        for row in &table.rows {
            for c in row {
                texts.push(c.text.clone());
            }
        }
        Vocab::build(texts.iter().map(|s| s.as_str()), 1)
    }

    fn sample() -> Table {
        Table {
            id: "t1".into(),
            page_title: "Awards".into(),
            section_title: String::new(),
            caption: "best direction".into(),
            topic_entity: Some(EntityRef { id: 9, mention: "best direction award".into() }),
            headers: vec!["Year".into(), "Director".into()],
            subject_column: 0,
            rows: vec![
                vec![Cell::linked(1, "15th"), Cell::linked(2, "Satyajit Ray")],
                vec![Cell::linked(3, "17th"), Cell::text("unlinked person")],
            ],
        }
    }

    #[test]
    fn linearization_order_and_counts() {
        let t = sample();
        let v = vocab_for(&t);
        let inst = TableInstance::from_table(&t, &v, &LinearizeConfig::default());
        // caption: "awards best direction" = 3 tokens; headers: year, director
        assert_eq!(inst.tokens.len(), 5);
        assert_eq!(inst.tokens[0].scope, TokenScope::Caption);
        assert_eq!(inst.tokens[3].scope, TokenScope::Header(0));
        assert_eq!(inst.tokens[4].scope, TokenScope::Header(1));
        // entities: topic + 3 linked cells (unlinked cell excluded)
        assert_eq!(inst.entities.len(), 4);
        assert_eq!(inst.entities[0].position, EntityPosition::Topic);
        assert_eq!(inst.entities[1].position, EntityPosition::Cell { row: 0, col: 0 });
        assert!(inst.entities[1].is_subject);
        assert!(!inst.entities[2].is_subject);
        assert_eq!(inst.seq_len(), 9);
    }

    #[test]
    fn type_indices_follow_paper() {
        let t = sample();
        let v = vocab_for(&t);
        let inst = TableInstance::from_table(&t, &v, &LinearizeConfig::default());
        assert_eq!(inst.entities[0].type_index(), 0); // topic
        assert_eq!(inst.entities[1].type_index(), 1); // subject
        assert_eq!(inst.entities[2].type_index(), 2); // object
    }

    #[test]
    fn truncation_limits_apply() {
        let mut t = sample();
        t.caption = "a b c d e f g h i j k l m n o p".into();
        let v = vocab_for(&t);
        let cfg = LinearizeConfig { max_caption_tokens: 4, max_rows: 1, ..Default::default() };
        let inst = TableInstance::from_table(&t, &v, &cfg);
        let caption_tokens =
            inst.tokens.iter().filter(|tk| tk.scope == TokenScope::Caption).count();
        assert_eq!(caption_tokens, 4);
        // only row 0 kept -> topic + 2 entities
        assert_eq!(inst.entities.len(), 3);
    }

    #[test]
    fn helpers_locate_columns() {
        let t = sample();
        let v = vocab_for(&t);
        let inst = TableInstance::from_table(&t, &v, &LinearizeConfig::default());
        assert_eq!(inst.entities_in_column(0).len(), 2);
        assert_eq!(inst.entities_in_column(1).len(), 1);
        assert_eq!(inst.header_tokens_of(1).len(), 1);
        assert_eq!(inst.entity_seq_index(0), inst.tokens.len());
    }

    #[test]
    fn mention_tokens_match_vocab_encoding() {
        let t = sample();
        let v = vocab_for(&t);
        let inst = TableInstance::from_table(&t, &v, &LinearizeConfig::default());
        let satyajit = &inst.entities[2];
        assert_eq!(satyajit.mention_tokens, v.encode("Satyajit Ray"));
    }
}
