//! Word-level tokenizer and vocabulary.
//!
//! The paper uses the BERT WordPiece vocabulary (30,522 tokens); we build a
//! word-level vocabulary from the training corpus with the same special
//! tokens, which plays the identical role for our synthetic corpus.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Padding token.
pub const PAD_TOKEN: &str = "[PAD]";
/// Unknown-word token.
pub const UNK_TOKEN: &str = "[UNK]";
/// Mask token used by MLM and MER.
pub const MASK_TOKEN: &str = "[MASK]";
/// Sequence-level aggregate token.
pub const CLS_TOKEN: &str = "[CLS]";

/// Lowercase a text and split it into alphanumeric word tokens.
///
/// Punctuation separates tokens and is dropped; digits are kept.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// A token vocabulary with reserved special tokens.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Build a vocabulary from an iterator of texts, keeping words that
    /// occur at least `min_count` times. Special tokens always occupy ids
    /// `0..4` in the order PAD, UNK, MASK, CLS.
    pub fn build<'a>(texts: impl Iterator<Item = &'a str>, min_count: usize) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for text in texts {
            for tok in tokenize(text) {
                *counts.entry(tok).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(String, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        // Deterministic order: by descending count, then lexicographic.
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut tokens: Vec<String> =
            [PAD_TOKEN, UNK_TOKEN, MASK_TOKEN, CLS_TOKEN].iter().map(|s| s.to_string()).collect();
        tokens.extend(words.into_iter().map(|(w, _)| w));
        let mut v = Self { tokens, index: HashMap::new() };
        v.rebuild_index();
        v
    }

    /// Rebuild the token → id index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self.tokens.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
    }

    /// Vocabulary size including special tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when only special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 4
    }

    /// Id of a token, if present.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Id of a token, falling back to `[UNK]`.
    pub fn id_or_unk(&self, token: &str) -> u32 {
        self.id(token).unwrap_or(self.unk_id())
    }

    /// Token string for an id.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Id of `[PAD]`.
    pub fn pad_id(&self) -> u32 {
        0
    }

    /// Id of `[UNK]`.
    pub fn unk_id(&self) -> u32 {
        1
    }

    /// Id of `[MASK]`.
    pub fn mask_id(&self) -> u32 {
        2
    }

    /// Id of `[CLS]`.
    pub fn cls_id(&self) -> u32 {
        3
    }

    /// Tokenize and encode a text.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        tokenize(text).iter().map(|t| self.id_or_unk(t)).collect()
    }

    /// Decode ids back to a space-joined string (for debugging).
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter().map(|&i| self.token(i)).collect::<Vec<_>>().join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("Satyajit Ray (director)"), vec!["satyajit", "ray", "director"]);
        assert_eq!(tokenize("2010–11 season"), vec!["2010", "11", "season"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   "), Vec::<String>::new());
    }

    #[test]
    fn build_respects_min_count() {
        let texts = ["apple banana apple", "apple cherry"];
        let v = Vocab::build(texts.iter().map(|s| &**s), 2);
        assert!(v.id("apple").is_some());
        assert!(v.id("banana").is_none());
        assert!(v.id("cherry").is_none());
    }

    #[test]
    fn special_token_ids_fixed() {
        let v = Vocab::build(std::iter::empty(), 1);
        assert_eq!(v.id(PAD_TOKEN), Some(0));
        assert_eq!(v.id(UNK_TOKEN), Some(1));
        assert_eq!(v.id(MASK_TOKEN), Some(2));
        assert_eq!(v.id(CLS_TOKEN), Some(3));
        assert_eq!(v.len(), 4);
        assert!(v.is_empty());
    }

    #[test]
    fn encode_falls_back_to_unk() {
        let texts = ["known word here"];
        let v = Vocab::build(texts.iter().map(|s| &**s), 1);
        let ids = v.encode("known unknown");
        assert_eq!(ids[0], v.id("known").unwrap());
        assert_eq!(ids[1], v.unk_id());
    }

    #[test]
    fn deterministic_ids_across_builds() {
        let texts = ["b a c a b a", "c b"];
        let v1 = Vocab::build(texts.iter().map(|s| &**s), 1);
        let v2 = Vocab::build(texts.iter().map(|s| &**s), 1);
        for t in ["a", "b", "c"] {
            assert_eq!(v1.id(t), v2.id(t));
        }
        // 'a' occurs 3 times, most frequent, so lowest non-special id
        assert_eq!(v1.id("a"), Some(4));
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let texts = ["hello world"];
        let v = Vocab::build(texts.iter().map(|s| &**s), 1);
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocab = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.id("hello"), v.id("hello"));
        assert_eq!(back.decode(&v.encode("hello world")), "hello world");
    }
}
