//! Corpus statistics (Table 3 of the paper).

use crate::model::Table;
use serde::{Deserialize, Serialize};

/// min / mean / median / max summary of one per-table metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitSummary {
    /// Minimum value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower of the two middle values for even counts).
    pub median: f64,
    /// Maximum value.
    pub max: f64,
}

impl SplitSummary {
    /// Summarize a list of per-table values.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { min: 0.0, mean: 0.0, median: 0.0, max: 0.0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Self {
            min: sorted[0],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: sorted[(sorted.len() - 1) / 2],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Per-split dataset statistics: rows, entity columns and entities per
/// table — the three blocks of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of tables in the split.
    pub n_tables: usize,
    /// Rows per table.
    pub rows: SplitSummary,
    /// Entity columns per table.
    pub entity_columns: SplitSummary,
    /// Linked entities per table.
    pub entities: SplitSummary,
}

impl CorpusStats {
    /// Compute statistics over a split.
    pub fn compute(tables: &[Table]) -> Self {
        let rows: Vec<f64> = tables.iter().map(|t| t.n_rows() as f64).collect();
        let cols: Vec<f64> = tables.iter().map(|t| t.entity_columns().len() as f64).collect();
        let ents: Vec<f64> = tables.iter().map(|t| t.n_linked_entities() as f64).collect();
        Self {
            n_tables: tables.len(),
            rows: SplitSummary::of(&rows),
            entity_columns: SplitSummary::of(&cols),
            entities: SplitSummary::of(&ents),
        }
    }

    /// Render one row block of Table 3.
    pub fn format_row(&self, label: &str) -> String {
        format!(
            "{label:>14} | min {:>5.0} | mean {:>7.1} | median {:>5.0} | max {:>6.0}",
            self.rows.min, self.rows.mean, self.rows.median, self.rows.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cell, Table};

    fn table_with(rows: usize, linked_cols: usize) -> Table {
        let headers = (0..linked_cols.max(1)).map(|i| format!("h{i}")).collect();
        let rows_v = (0..rows)
            .map(|r| {
                (0..linked_cols.max(1))
                    .map(|c| {
                        if c < linked_cols {
                            Cell::linked((r * 10 + c) as u32, format!("e{r}{c}"))
                        } else {
                            Cell::text("x")
                        }
                    })
                    .collect()
            })
            .collect();
        Table {
            id: format!("t{rows}"),
            page_title: String::new(),
            section_title: String::new(),
            caption: String::new(),
            topic_entity: None,
            headers,
            rows: rows_v,
            subject_column: 0,
        }
    }

    #[test]
    fn summary_of_known_values() {
        let s = SplitSummary::of(&[1.0, 5.0, 3.0, 9.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 4.5);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = SplitSummary::of(&[]);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn stats_count_entity_columns_and_entities() {
        let tables = vec![table_with(2, 2), table_with(4, 3)];
        let s = CorpusStats::compute(&tables);
        assert_eq!(s.n_tables, 2);
        assert_eq!(s.rows.min, 2.0);
        assert_eq!(s.rows.max, 4.0);
        assert_eq!(s.entity_columns.min, 2.0);
        assert_eq!(s.entity_columns.max, 3.0);
        assert_eq!(s.entities.min, 4.0);
        assert_eq!(s.entities.max, 12.0);
    }

    #[test]
    fn format_row_mentions_all_stats() {
        let s = CorpusStats::compute(&[table_with(3, 1)]);
        let line = s.format_row("train");
        assert!(line.contains("train"));
        assert!(line.contains("min"));
        assert!(line.contains("median"));
    }
}
