//! The relational-table data model (§2, Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Unique identifier of an entity in the entity vocabulary / knowledge base.
pub type EntityId = u32;

/// A linked entity occurrence: the entity `e^e` plus its surface mention
/// `e^m` (the cell text string).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityRef {
    /// The linked entity.
    pub id: EntityId,
    /// The surface form used in this cell.
    pub mention: String,
}

/// One table cell: raw text, optionally linked to an entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Cell text (equals the entity mention for linked cells).
    pub text: String,
    /// Entity link, when the cell refers to a known entity.
    pub entity: Option<EntityRef>,
}

impl Cell {
    /// An empty cell.
    pub fn empty() -> Self {
        Self { text: String::new(), entity: None }
    }

    /// A plain-text (unlinked) cell.
    pub fn text(text: impl Into<String>) -> Self {
        Self { text: text.into(), entity: None }
    }

    /// A cell linked to entity `id` with surface form `mention`.
    pub fn linked(id: EntityId, mention: impl Into<String>) -> Self {
        let mention = mention.into();
        Self { text: mention.clone(), entity: Some(EntityRef { id, mention }) }
    }

    /// True when the cell is linked to an entity.
    pub fn is_linked(&self) -> bool {
        self.entity.is_some()
    }
}

/// A relational Web table `T = (C, H, E, e_t)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Stable table identifier.
    pub id: String,
    /// Title of the page the table was extracted from.
    pub page_title: String,
    /// Section title on that page.
    pub section_title: String,
    /// The table caption `C`.
    pub caption: String,
    /// The topic entity `e_t`, when identified.
    pub topic_entity: Option<EntityRef>,
    /// Column headers `H` (one per column).
    pub headers: Vec<String>,
    /// Table content: rows of cells, each row as wide as `headers`.
    pub rows: Vec<Vec<Cell>>,
    /// Index of the subject column (see §5.1 subject-column detection).
    pub subject_column: usize,
}

impl Table {
    /// Comprehensive description: page title, section title and caption
    /// concatenated (the paper's pre-processing step, §5.1).
    pub fn full_caption(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for p in [&self.page_title, &self.section_title, &self.caption] {
            if !p.is_empty() {
                parts.push(p);
            }
        }
        parts.join(" ")
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.headers.len()
    }

    /// Cell at `(row, col)`, if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Cell> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// Columns containing at least one linked cell ("entity columns").
    pub fn entity_columns(&self) -> Vec<usize> {
        (0..self.n_cols())
            .filter(|&c| self.rows.iter().any(|r| r.get(c).is_some_and(Cell::is_linked)))
            .collect()
    }

    /// All linked entities in content cells, with their (row, col) position.
    pub fn linked_entities(&self) -> impl Iterator<Item = (usize, usize, &EntityRef)> {
        self.rows.iter().enumerate().flat_map(|(ri, row)| {
            row.iter()
                .enumerate()
                .filter_map(move |(ci, cell)| cell.entity.as_ref().map(|e| (ri, ci, e)))
        })
    }

    /// Count of linked entity cells (excluding the topic entity).
    pub fn n_linked_entities(&self) -> usize {
        self.linked_entities().count()
    }

    /// Linked entities in the subject column, in row order.
    pub fn subject_entities(&self) -> Vec<&EntityRef> {
        self.rows
            .iter()
            .filter_map(|r| r.get(self.subject_column).and_then(|c| c.entity.as_ref()))
            .collect()
    }

    /// Fraction of cells in entity columns that are linked.
    pub fn linked_cell_ratio(&self) -> f64 {
        let cols = self.entity_columns();
        if cols.is_empty() || self.rows.is_empty() {
            return 0.0;
        }
        let total = cols.len() * self.rows.len();
        let linked: usize = cols
            .iter()
            .map(|&c| self.rows.iter().filter(|r| r.get(c).is_some_and(Cell::is_linked)).count())
            .sum();
        linked as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_table() -> Table {
        Table {
            id: "t1".into(),
            page_title: "National Film Award for Best Direction".into(),
            section_title: "Recipients".into(),
            caption: "award winners by year".into(),
            topic_entity: Some(EntityRef { id: 100, mention: "National Film Award".into() }),
            headers: vec!["Year".into(), "Director".into(), "Film".into(), "Language".into()],
            subject_column: 0,
            rows: vec![
                vec![
                    Cell::linked(1, "15th"),
                    Cell::linked(2, "Satyajit Ray"),
                    Cell::linked(3, "Chiriyakhana"),
                    Cell::text("Bengali"),
                ],
                vec![
                    Cell::linked(4, "17th"),
                    Cell::linked(5, "Mrinal Sen"),
                    Cell::linked(6, "Bhuvan Shome"),
                    Cell::text("Hindi"),
                ],
            ],
        }
    }

    #[test]
    fn full_caption_concatenates_metadata() {
        let t = sample_table();
        assert_eq!(
            t.full_caption(),
            "National Film Award for Best Direction Recipients award winners by year"
        );
    }

    #[test]
    fn full_caption_skips_empty_parts() {
        let mut t = sample_table();
        t.section_title.clear();
        assert!(!t.full_caption().contains("  "));
    }

    #[test]
    fn entity_columns_excludes_text_only() {
        let t = sample_table();
        assert_eq!(t.entity_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn subject_entities_in_row_order() {
        let t = sample_table();
        let subj = t.subject_entities();
        assert_eq!(subj.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn linked_counts_and_ratio() {
        let t = sample_table();
        assert_eq!(t.n_linked_entities(), 6);
        assert!((t.linked_cell_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample_table();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
