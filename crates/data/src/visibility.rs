//! The visibility matrix `M` of §4.3.
//!
//! A symmetric binary matrix over the linearized sequence. `M[i][j] = 1`
//! iff element `j` is visible to element `i`:
//!
//! * caption tokens and the topic entity are visible to (and see) all
//!   elements;
//! * header tokens see other header tokens and the entities of their own
//!   column;
//! * cell entities see entities/tokens in the same row or the same column.

use crate::linearize::{EntityPosition, TableInstance, TokenScope};

/// Structural element classification used to evaluate visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Element {
    Caption,
    Header(usize),
    Topic,
    Cell { row: usize, col: usize },
}

fn visible(a: Element, b: Element) -> bool {
    use Element::*;
    match (a, b) {
        (Caption, _) | (_, Caption) | (Topic, _) | (_, Topic) => true,
        // headers form the schema row: mutually visible
        (Header(_), Header(_)) => true,
        (Header(c), Cell { col, .. }) | (Cell { col, .. }, Header(c)) => c == col,
        (Cell { row: r1, col: c1 }, Cell { row: r2, col: c2 }) => r1 == r2 || c1 == c2,
    }
}

/// A dense symmetric boolean visibility matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisibilityMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl VisibilityMatrix {
    /// Build the matrix for a linearized table.
    pub fn build(inst: &TableInstance) -> Self {
        let n = inst.seq_len();
        let elems: Vec<Element> = inst
            .tokens
            .iter()
            .map(|t| match t.scope {
                TokenScope::Caption => Element::Caption,
                TokenScope::Header(c) => Element::Header(c),
            })
            .chain(inst.entities.iter().map(|e| match e.position {
                EntityPosition::Topic => Element::Topic,
                EntityPosition::Cell { row, col } => Element::Cell { row, col },
            }))
            .collect();
        let mut bits = vec![false; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = i == j || visible(elems[i], elems[j]);
                bits[i * n + j] = v;
                bits[j * n + i] = v;
            }
        }
        Self { n, bits }
    }

    /// A fully visible matrix (the "no visibility matrix" ablation of
    /// Figure 7a).
    pub fn allow_all(n: usize) -> Self {
        Self { n, bits: vec![true; n * n] }
    }

    /// Sequence length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether element `j` is visible to element `i`.
    pub fn visible(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.n + j]
    }

    /// Row-major additive attention mask: `0.0` where visible, `neg`
    /// (e.g. `-1e9`) where masked.
    pub fn to_additive_mask(&self, neg: f32) -> Vec<f32> {
        self.bits.iter().map(|&b| if b { 0.0 } else { neg }).collect()
    }

    /// Fraction of visible pairs (diagnostic).
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.bits.iter().filter(|&&b| b).count() as f64 / (self.n * self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearize::{LinearizeConfig, TableInstance};
    use crate::model::{Cell, EntityRef, Table};
    use crate::tokenizer::Vocab;

    /// 2x2 fully linked table with topic entity; caption one token.
    fn build_instance() -> TableInstance {
        let t = Table {
            id: "t".into(),
            page_title: String::new(),
            section_title: String::new(),
            caption: "films".into(),
            topic_entity: Some(EntityRef { id: 50, mention: "topic".into() }),
            headers: vec!["year".into(), "director".into()],
            subject_column: 0,
            rows: vec![
                vec![Cell::linked(1, "a"), Cell::linked(2, "b")],
                vec![Cell::linked(3, "c"), Cell::linked(4, "d")],
            ],
        };
        let v = Vocab::build(["films year director topic a b c d"].iter().map(|s| &**s), 1);
        TableInstance::from_table(&t, &v, &LinearizeConfig::default())
    }

    // Sequence layout: [0]=caption "films", [1]=hdr year, [2]=hdr director,
    // [3]=topic, [4]=e(0,0), [5]=e(0,1), [6]=e(1,0), [7]=e(1,1)

    #[test]
    fn caption_and_topic_see_everything() {
        let m = VisibilityMatrix::build(&build_instance());
        for j in 0..m.n() {
            assert!(m.visible(0, j), "caption must see {j}");
            assert!(m.visible(3, j), "topic must see {j}");
            assert!(m.visible(j, 0) && m.visible(j, 3), "everything sees caption/topic");
        }
    }

    #[test]
    fn headers_see_each_other_and_own_column_only() {
        let m = VisibilityMatrix::build(&build_instance());
        assert!(m.visible(1, 2), "headers mutually visible");
        assert!(m.visible(1, 4), "year header sees column-0 entity");
        assert!(m.visible(1, 6));
        assert!(!m.visible(1, 5), "year header must not see column-1 entity");
        assert!(!m.visible(1, 7));
    }

    #[test]
    fn cells_see_same_row_and_column() {
        let m = VisibilityMatrix::build(&build_instance());
        // e(0,0): same row e(0,1), same col e(1,0); not e(1,1)
        assert!(m.visible(4, 5));
        assert!(m.visible(4, 6));
        assert!(!m.visible(4, 7), "diagonal cells must be invisible (Satyajit/Pratidwandi)");
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = VisibilityMatrix::build(&build_instance());
        for i in 0..m.n() {
            assert!(m.visible(i, i));
            for j in 0..m.n() {
                assert_eq!(m.visible(i, j), m.visible(j, i));
            }
        }
    }

    #[test]
    fn additive_mask_values() {
        let m = VisibilityMatrix::build(&build_instance());
        let mask = m.to_additive_mask(-1e9);
        assert_eq!(mask.len(), m.n() * m.n());
        let n = m.n();
        assert_eq!(mask[4 * n + 7], -1e9);
        assert_eq!(mask[4 * n + 5], 0.0);
    }

    #[test]
    fn allow_all_is_dense() {
        let m = VisibilityMatrix::allow_all(5);
        assert_eq!(m.density(), 1.0);
        assert!(m.visible(0, 4));
    }

    #[test]
    fn structured_matrix_is_sparser_than_allow_all() {
        let m = VisibilityMatrix::build(&build_instance());
        assert!(m.density() < 1.0);
        assert!(m.density() > 0.0);
    }
}
