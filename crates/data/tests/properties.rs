//! Property-based tests for the data model: tokenizer, vocabulary,
//! linearization and visibility-matrix invariants.

use proptest::prelude::*;
use turl_data::{
    tokenize, Cell, EntityRef, LinearizeConfig, Table, TableInstance, VisibilityMatrix, Vocab,
};

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_word(), 0..6).prop_map(|ws| ws.join(" "))
}

fn arb_table() -> impl Strategy<Value = Table> {
    (
        arb_text(),
        proptest::collection::vec(arb_word(), 1..5),
        1usize..6,
        proptest::collection::vec(any::<bool>(), 1..25),
    )
        .prop_map(|(caption, headers, n_rows, link_flags)| {
            let n_cols = headers.len();
            let mut flag = link_flags.into_iter().cycle();
            let rows = (0..n_rows)
                .map(|r| {
                    (0..n_cols)
                        .map(|c| {
                            let id = (r * n_cols + c) as u32;
                            if flag.next().expect("cycled iterator never ends") {
                                Cell::linked(id, format!("ent{id}"))
                            } else {
                                Cell::text(format!("txt{id}"))
                            }
                        })
                        .collect()
                })
                .collect();
            Table {
                id: "prop".into(),
                page_title: String::new(),
                section_title: String::new(),
                caption,
                topic_entity: Some(EntityRef { id: 9999, mention: "topic".into() }),
                headers,
                rows,
                subject_column: 0,
            }
        })
}

fn vocab_for(t: &Table) -> Vocab {
    let mut texts = vec![t.full_caption()];
    texts.extend(t.headers.clone());
    for row in &t.rows {
        for c in row {
            texts.push(c.text.clone());
        }
    }
    texts.push("topic".into());
    Vocab::build(texts.iter().map(String::as_str), 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tokenize_is_idempotent_on_its_output(text in arb_text()) {
        let once = tokenize(&text);
        let twice = tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tokenize_never_emits_empty_or_uppercase(text in "\\PC{0,40}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            // lowercase-normalized: re-lowercasing is a no-op (some chars,
            // e.g. squared Latin letters, are Other_Uppercase with no
            // lowercase mapping — those stay as-is)
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
            prop_assert!(!tok.chars().any(|c| c.is_whitespace()));
            // ASCII output is strictly alphanumeric; non-ASCII lowercase
            // mappings may include combining marks, which is fine
            prop_assert!(tok.chars().filter(|c| c.is_ascii()).all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn vocab_encode_decode_consistent(words in proptest::collection::vec(arb_word(), 1..10)) {
        let text = words.join(" ");
        let vocab = Vocab::build(std::iter::once(text.as_str()), 1);
        let ids = vocab.encode(&text);
        prop_assert_eq!(vocab.decode(&ids), tokenize(&text).join(" "));
        // every in-vocab token id is stable
        for id in &ids {
            prop_assert!((*id as usize) < vocab.len());
        }
    }

    #[test]
    fn linearization_counts_match_table(table in arb_table()) {
        let vocab = vocab_for(&table);
        let cfg = LinearizeConfig { max_rows: 100, ..Default::default() };
        let inst = TableInstance::from_table(&table, &vocab, &cfg);
        // one entity item per linked cell plus the topic entity
        prop_assert_eq!(inst.entities.len(), table.n_linked_entities() + 1);
        prop_assert_eq!(inst.seq_len(), inst.tokens.len() + inst.entities.len());
        // column helpers agree with the table
        for col in 0..table.n_cols() {
            let linked_in_col = table
                .rows
                .iter()
                .filter(|r| r.get(col).map(|c| c.is_linked()).unwrap_or(false))
                .count();
            prop_assert_eq!(inst.entities_in_column(col).len(), linked_in_col);
        }
    }

    #[test]
    fn visibility_matrix_invariants(table in arb_table()) {
        let vocab = vocab_for(&table);
        let inst = TableInstance::from_table(&table, &vocab, &LinearizeConfig::default());
        let m = VisibilityMatrix::build(&inst);
        let n = m.n();
        prop_assert_eq!(n, inst.seq_len());
        for i in 0..n {
            // reflexive
            prop_assert!(m.visible(i, i));
            for j in 0..n {
                // symmetric
                prop_assert_eq!(m.visible(i, j), m.visible(j, i));
            }
        }
        // topic entity (first entity item) sees everything
        if !inst.entities.is_empty() {
            let topic_row = inst.entity_seq_index(0);
            for j in 0..n {
                prop_assert!(m.visible(topic_row, j));
            }
        }
        // the additive mask matches the boolean matrix
        let mask = m.to_additive_mask(-1e9);
        for i in 0..n {
            for j in 0..n {
                let expect = if m.visible(i, j) { 0.0 } else { -1e9 };
                prop_assert_eq!(mask[i * n + j], expect);
            }
        }
    }

    #[test]
    fn truncation_is_monotone(table in arb_table(), max_rows in 1usize..6) {
        let vocab = vocab_for(&table);
        let small = TableInstance::from_table(
            &table,
            &vocab,
            &LinearizeConfig { max_rows, ..Default::default() },
        );
        let large = TableInstance::from_table(
            &table,
            &vocab,
            &LinearizeConfig { max_rows: max_rows + 3, ..Default::default() },
        );
        prop_assert!(small.entities.len() <= large.entities.len());
        prop_assert!(small.seq_len() <= large.seq_len());
    }
}
