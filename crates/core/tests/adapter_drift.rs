//! Adapter-drift guard: the `TurlConfig → ModelPlan` adaptation must
//! keep describing the real model. Lowering the adapted plan to the
//! audit IR has to produce exactly the op sequence (count and shapes)
//! that one genuine training forward records on the autograd tape —
//! if the runtime grows or reorders an op without the adapter
//! following, this test is the tripwire.

use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_audit::{align_with_graph, lower_model_plan};
use turl_core::{EncodedInput, EntityInput, TurlConfig, TurlModel};
use turl_nn::{Forward, ParamStore};
use turl_tensor::Tensor;

const N_WORDS: usize = 60;
const N_KB_ENTITIES: usize = 25;

/// A fixed input shaped like one linearized table: metadata tokens,
/// entity cells with mentions of mixed length, both heads active.
fn fixture_input(use_mask: bool) -> EncodedInput {
    let entities: Vec<EntityInput> = (0..4)
        .map(|i| EntityInput {
            emb_index: i * 5,
            mention: (0..i).map(|k| (i * 4 + k) % N_WORDS).collect(),
            type_idx: i % 3,
        })
        .collect();
    let n = 6 + entities.len();
    let mask = use_mask.then(|| {
        let mut m = Tensor::full(vec![n, n], -1e9);
        for i in 0..n {
            for j in 0..n {
                if i == j || (i + j) % 2 == 0 {
                    m.set2(i, j, 0.0);
                }
            }
        }
        m
    });
    EncodedInput {
        token_ids: (0..6).map(|i| i * 7 % N_WORDS).collect(),
        token_types: vec![0, 0, 1, 1, 1, 1],
        token_pos: vec![0, 1, 0, 1, 2, 3],
        entities,
        mask,
    }
}

/// Run the pre-trainer-shaped forward (encode, MLM head, MER head,
/// summed loss) and assert the adapted plan's IR aligns with the tape
/// op-for-op. `training` toggles `Forward::new` vs `Forward::inference`;
/// dropout must be zero so the tape has no mask-multiply nodes the IR
/// does not model.
fn assert_ir_matches_tape(mut cfg: TurlConfig, seed: u64, training: bool) {
    cfg.encoder.dropout = 0.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = TurlModel::new(&mut store, &mut rng, cfg, N_WORDS, N_KB_ENTITIES);
    let input = fixture_input(cfg.use_visibility);
    let n_mention_tokens: usize = input.entities.iter().map(|e| e.mention.len()).sum();
    let candidates = [0usize, 3, 8, 11];

    let plan = turl_core::audit::model_plan(
        &cfg,
        N_WORDS,
        N_KB_ENTITIES,
        input.token_ids.len(),
        input.entities.len(),
        n_mention_tokens,
        2,
        2,
        candidates.len(),
    );
    let ir = lower_model_plan(&plan).expect("adapted plan lowers");

    let mut f = if training { Forward::new(&store) } else { Forward::inference(&store) };
    let h = model.encode(&mut f, &store, &mut rng, &input);
    let mlm_logits = model.mlm_logits(&mut f, &store, h, &[2, 4]);
    let mlm = f.graph.cross_entropy(mlm_logits, &[9, 10]);
    let rows = [input.entity_row(1), input.entity_row(3)];
    let mer_logits = model.mer_logits(&mut f, &store, h, &rows, &candidates);
    let mer = f.graph.cross_entropy(mer_logits, &[2, 0]);
    let loss = f.graph.add(mlm, mer);
    if training {
        f.backprop(loss, &mut store);
    }

    let pairs = align_with_graph(&ir, &f.graph)
        .expect("IR drifted from the runtime tape: adapter and model disagree");
    let computed = ir.nodes().iter().filter(|n| !n.kind.is_source()).count();
    assert_eq!(pairs.len(), computed, "every computed IR node must pair with a tape op");
    for (tid, var) in &pairs {
        assert_eq!(
            ir.node_at(tid.index()).shape,
            f.graph.value(*var).shape(),
            "shape drift at `{}`",
            ir.node_at(tid.index()).label
        );
    }
}

#[test]
fn tiny_training_forward_matches_adapted_plan() {
    assert_ir_matches_tape(TurlConfig::tiny(3), 3, true);
}

#[test]
fn small_inference_forward_matches_adapted_plan() {
    assert_ir_matches_tape(TurlConfig::small(5), 5, false);
}

#[test]
fn unmasked_config_matches_too() {
    let cfg = TurlConfig { use_visibility: false, ..TurlConfig::tiny(11) };
    assert_ir_matches_tape(cfg, 11, true);
}
