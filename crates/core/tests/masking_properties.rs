//! Property tests for the §4.4 masking mechanics and candidate
//! construction: the statistical contract of `apply_mask_plan` and the
//! structural contract of `build_candidates`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_core::{apply_mask_plan, build_candidates, EncodedInput, TurlConfig};
use turl_data::{Cell, EntityRef, LinearizeConfig, Table, TableInstance, Vocab};
use turl_kb::CooccurrenceIndex;

fn table_with(n_rows: usize, n_cols: usize) -> (TableInstance, Vocab) {
    let headers: Vec<String> = (0..n_cols).map(|c| format!("h{c}")).collect();
    let rows: Vec<Vec<Cell>> = (0..n_rows)
        .map(|r| {
            (0..n_cols)
                .map(|c| Cell::linked((r * n_cols + c) as u32, format!("e{r}x{c}")))
                .collect()
        })
        .collect();
    let t = Table {
        id: "m".into(),
        page_title: "page".into(),
        section_title: String::new(),
        caption: "caption words here for masking".into(),
        topic_entity: Some(EntityRef { id: 900, mention: "topic".into() }),
        headers,
        rows,
        subject_column: 0,
    };
    let mut texts = vec![t.full_caption()];
    texts.extend(t.headers.clone());
    for row in &t.rows {
        for c in row {
            texts.push(c.text.clone());
        }
    }
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
    let inst = TableInstance::from_table(&t, &vocab, &LinearizeConfig::default());
    (inst, vocab)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mask_plan_targets_are_recoverable(seed in 0u64..5000, rows in 2usize..6, cols in 2usize..4) {
        let (inst, vocab) = table_with(rows, cols);
        let cfg = TurlConfig::tiny(1);
        let clean = EncodedInput::from_instance(&inst, &vocab, true);
        let mut enc = clean.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = apply_mask_plan(&mut rng, &mut enc, &cfg, vocab.mask_id() as usize, vocab.len(), 1000);

        // sequence length never changes
        prop_assert_eq!(enc.seq_len(), clean.seq_len());
        // every MLM target records the ORIGINAL token at that position
        for &(pos, original) in &plan.mlm {
            prop_assert_eq!(clean.token_ids[pos], original);
        }
        // every MER target records the original (unshifted) entity
        for &(cell, original) in &plan.mer {
            prop_assert_eq!(clean.entities[cell].emb_index, original + 1);
        }
        // unselected positions are untouched
        let mlm_set: std::collections::HashSet<usize> = plan.mlm.iter().map(|&(p, _)| p).collect();
        for (p, (&a, &b)) in clean.token_ids.iter().zip(enc.token_ids.iter()).enumerate() {
            if !mlm_set.contains(&p) {
                prop_assert_eq!(a, b, "unselected token {} changed", p);
            }
        }
        let mer_set: std::collections::HashSet<usize> = plan.mer.iter().map(|&(c, _)| c).collect();
        for (c, (a, b)) in clean.entities.iter().zip(enc.entities.iter()).enumerate() {
            if !mer_set.contains(&c) {
                prop_assert_eq!(a, b, "unselected entity cell {} changed", c);
            }
        }
    }

    #[test]
    fn mask_plan_is_deterministic_in_seed(seed in 0u64..1000) {
        let (inst, vocab) = table_with(4, 3);
        let cfg = TurlConfig::tiny(1);
        let run = || {
            let mut enc = EncodedInput::from_instance(&inst, &vocab, true);
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = apply_mask_plan(&mut rng, &mut enc, &cfg, vocab.mask_id() as usize, vocab.len(), 1000);
            (enc.token_ids.clone(), plan.mlm, plan.mer)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn candidates_unique_and_within_vocab(seed in 0u64..1000) {
        let (inst, _) = table_with(4, 3);
        let cfg = TurlConfig::tiny(2);
        let cooccur = CooccurrenceIndex::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let n_entities = 1000;
        let cands = build_candidates(&mut rng, &inst, &cooccur, &cfg, n_entities);
        let set: std::collections::HashSet<usize> = cands.iter().copied().collect();
        prop_assert_eq!(set.len(), cands.len(), "duplicate candidates");
        for &c in &cands {
            prop_assert!(c < n_entities);
        }
        // all table entities present (default config)
        for e in &inst.entities {
            prop_assert!(set.contains(&(e.entity as usize)));
        }
    }
}
