//! Artifact round-trip parity at the model level.
//!
//! The `turl export` wire format promises two things the nn-level tests
//! can't check on their own:
//!
//! 1. An f32 artifact is a *perfect* serialization: binding the loaded
//!    store into `CompiledForward` reproduces the in-memory outputs
//!    bit-for-bit (`f32::to_bits`).
//! 2. A quantized store run through the compiled path is bit-identical
//!    to running the *dequantized* weights through the same path — the
//!    q8 kernels dequantize in-register and accumulate in the same
//!    association as the dense kernels, so quantization error enters
//!    through the weights once, never through the execution route.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use turl_core::{EncodedInput, EntityInput, TurlConfig, TurlModel};
use turl_nn::{export_artifact, load_artifact, ExportOptions, ParamStore};

const N_WORDS: usize = 48;
const N_KB_ENTITIES: usize = 17;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("turl-core-artifact-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn build_input(seed: u64, tokens: usize, ents: usize) -> EncodedInput {
    let mut rng = StdRng::seed_from_u64(seed);
    EncodedInput {
        token_ids: (0..tokens).map(|_| rng.gen_range(0..N_WORDS)).collect(),
        token_types: (0..tokens).map(|i| i % 2).collect(),
        token_pos: (0..tokens).collect(),
        entities: (0..ents)
            .map(|i| EntityInput {
                emb_index: rng.gen_range(0..=N_KB_ENTITIES),
                mention: (0..(i % 3)).map(|_| rng.gen_range(0..N_WORDS)).collect(),
                type_idx: i % 3,
            })
            .collect(),
        mask: None,
    }
}

fn fresh_model(seed: u64) -> (ParamStore, TurlModel) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = TurlConfig::tiny(seed);
    let model = TurlModel::new(&mut store, &mut rng, cfg, N_WORDS, N_KB_ENTITIES);
    (store, model)
}

/// Encode with both stores and assert bit-identical outputs.
fn assert_encodes_bit_equal(
    model: &TurlModel,
    a: &ParamStore,
    b: &ParamStore,
    input: &EncodedInput,
) {
    let mut cf_a = model.compiled();
    let mut cf_b = model.compiled();
    let out_a = cf_a.encode(model, a, input).expect("encode with store a");
    let out_b = cf_b.encode(model, b, input).expect("encode with store b");
    assert_eq!(out_a.shape(), out_b.shape());
    for (i, (x, y)) in out_a.data().iter().zip(out_b.data().iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "bit divergence at element {i} ({x} vs {y})");
    }
}

#[test]
fn f32_artifact_reproduces_compiled_outputs_bit_exactly() {
    let (store, model) = fresh_model(41);
    let dir = tmp_dir("f32");
    let path = dir.join("model.artifact");
    let summary =
        export_artifact(&store, &path, &ExportOptions::default()).expect("export f32 artifact");
    assert_eq!(summary.quantized, 0, "--f32 export must not quantize");

    let loaded = load_artifact(&path).expect("load artifact");
    assert_eq!(loaded.len(), store.len());
    for id in store.ids() {
        assert_eq!(store.name(id), loaded.name(id), "ParamId order must survive the round-trip");
    }

    for (seed, tokens, ents) in [(1u64, 7, 3), (2, 5, 0), (3, 0, 4)] {
        let input = build_input(seed, tokens, ents);
        assert_encodes_bit_equal(&model, &store, &loaded, &input);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantized_store_matches_dequantized_weights_bit_exactly() {
    let (store, model) = fresh_model(43);

    // Mirror the export policy: quantize dense rank-2 tensors above the
    // element floor (use 0 here so every matrix takes the q8 route).
    let mut quant = ParamStore::new();
    let mut dequant = ParamStore::new();
    let mut n_quantized = 0usize;
    for id in store.ids() {
        let v = store.value(id);
        let (q, d) = if v.shape().len() == 2 {
            n_quantized += 1;
            let qv = v.quantize_i8();
            let dv = qv.dequantize();
            (qv, dv)
        } else {
            (v.clone(), v.clone())
        };
        quant.register_inference(store.name(id).to_string(), q);
        dequant.register_inference(store.name(id).to_string(), d);
    }
    assert!(n_quantized > 0, "model must have rank-2 params to exercise q8");

    for (seed, tokens, ents) in [(5u64, 6, 2), (6, 3, 3)] {
        let input = build_input(seed, tokens, ents);
        assert_encodes_bit_equal(&model, &quant, &dequant, &input);
    }
}

#[test]
fn int8_artifact_round_trips_through_the_compiled_path() {
    let (store, model) = fresh_model(47);
    let dir = tmp_dir("int8");
    let path = dir.join("model-int8.artifact");
    let opts = ExportOptions { quantize: true, min_quant_elems: 1 };
    let summary = export_artifact(&store, &path, &opts).expect("export int8 artifact");
    assert!(summary.quantized > 0, "int8 export must quantize something");

    let loaded = load_artifact(&path).expect("load artifact");
    assert_eq!(loaded.len(), store.len());

    // The loaded quantized store must encode successfully and stay close
    // to the f32 reference: every weight is off by at most half a
    // quantization step, so a tiny model's outputs stay within a loose
    // absolute tolerance (the tight accuracy gate lives in the CLI probe).
    let input = build_input(9, 6, 3);
    let mut cf_ref = model.compiled();
    let mut cf_q = model.compiled();
    let want = cf_ref.encode(&model, &store, &input).expect("f32 encode");
    let got = cf_q.encode(&model, &loaded, &input).expect("int8 encode");
    assert_eq!(want.shape(), got.shape());
    for (i, (x, y)) in want.data().iter().zip(got.data().iter()).enumerate() {
        assert!(y.is_finite(), "non-finite int8 output at {i}");
        assert!((x - y).abs() <= 0.35, "int8 output drifted at {i}: {x} vs {y}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
