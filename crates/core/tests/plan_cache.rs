//! Regression test for the bounded compiled-plan cache: a server fed
//! arbitrary table shapes must hold at most `plan_cache_cap` resident
//! compiled plans, no matter how many distinct shapes pass through.

use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_core::{EncodedInput, EntityInput, TurlConfig, TurlModel};
use turl_nn::ParamStore;

fn shape_input(tokens: usize, ents: usize) -> EncodedInput {
    EncodedInput {
        token_ids: (0..tokens).map(|i| i % 50).collect(),
        token_types: (0..tokens).map(|i| i % 2).collect(),
        token_pos: (0..tokens).collect(),
        entities: (0..ents)
            .map(|i| EntityInput { emb_index: i % 21, mention: vec![i % 50], type_idx: i % 3 })
            .collect(),
        mask: None,
    }
}

#[test]
fn thousand_distinct_shapes_stay_at_the_cap() {
    let cfg = TurlConfig::tiny(2);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
    let mut cf = model.compiled();
    assert_eq!(cf.plan_cache_cap(), turl_core::DEFAULT_PLAN_CACHE_CAP);
    cf.set_plan_cache_cap(8);

    // 1000 distinct shapes: tokens 1..=100 x entities 0..10. Compiling
    // (plan_for) is enough to exercise insertion + eviction without the
    // cost of running every forward.
    let mut fed = 0usize;
    for tokens in 1..=100usize {
        for ents in 0..10usize {
            let input = shape_input(tokens, ents);
            cf.plan_for(&model, &store, &input).expect("plan compiles");
            fed += 1;
            assert!(
                cf.compiled_shapes() <= 8,
                "resident plans {} exceeded cap after {fed} shapes",
                cf.compiled_shapes()
            );
        }
    }
    assert_eq!(fed, 1000);
    assert_eq!(cf.compiled_shapes(), 8, "cache should sit exactly at the cap");
    assert_eq!(cf.plan_evictions(), (fed - 8) as u64);
}

#[test]
fn lru_keeps_hot_shapes_and_evicts_cold_ones() {
    let cfg = TurlConfig::tiny(3);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
    let mut cf = model.compiled();
    cf.set_plan_cache_cap(2);

    let a = shape_input(3, 1);
    let b = shape_input(4, 1);
    let c = shape_input(5, 1);
    cf.plan_for(&model, &store, &a).expect("a");
    cf.plan_for(&model, &store, &b).expect("b");
    // Touch `a` so `b` is the LRU entry, then insert `c`: `b` evicts.
    cf.plan_for(&model, &store, &a).expect("a again");
    cf.plan_for(&model, &store, &c).expect("c");
    assert_eq!(cf.plan_evictions(), 1);
    // `a` and `c` are resident: re-requesting them compiles nothing new.
    cf.plan_for(&model, &store, &a).expect("a hot");
    cf.plan_for(&model, &store, &c).expect("c hot");
    assert_eq!(cf.plan_evictions(), 1, "hot shapes must not recompile or evict");
    // `b` was evicted: re-requesting it recompiles and evicts again.
    cf.plan_for(&model, &store, &b).expect("b cold");
    assert_eq!(cf.plan_evictions(), 2);
    assert_eq!(cf.compiled_shapes(), 2);
}

#[test]
fn shrinking_the_cap_evicts_immediately() {
    let cfg = TurlConfig::tiny(4);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(4);
    let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
    let mut cf = model.compiled();
    for tokens in 1..=6usize {
        cf.plan_for(&model, &store, &shape_input(tokens, 1)).expect("plan");
    }
    assert_eq!(cf.compiled_shapes(), 6);
    cf.set_plan_cache_cap(3);
    assert_eq!(cf.compiled_shapes(), 3);
    assert_eq!(cf.plan_evictions(), 3);
}

#[test]
fn empty_input_is_a_typed_error() {
    let cfg = TurlConfig::tiny(5);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
    let mut cf = model.compiled();
    let empty = shape_input(0, 0);
    let err = cf.encode(&model, &store, &empty).expect_err("empty input must not compile");
    assert!(format!("{err}").contains("empty input"), "unexpected error: {err}");
}
