//! Compiled-vs-graph equivalence suite (the forward-plan compiler's
//! correctness pins).
//!
//! 1. A property test over the config/input space — sequence lengths,
//!    head counts, layer counts, `ln_eps`, visibility masks including
//!    fully-masked rows — asserting the compiled arena executor is
//!    **bit-identical** (`f32::to_bits`) to the tape-based `Graph`
//!    forward. Every fused kernel is reassociation-free, so exact
//!    equality is the contract, not a tolerance.
//! 2. A schedule-vs-IR drift guard: the compiled step schedule must
//!    cover the lowered IR exactly while that same IR still aligns
//!    op-for-op with the runtime tape (`align_with_graph`), chaining
//!    compiled schedule → IR → tape.
//! 3. A re-check of the range analysis (PR 5) against *executed* fused
//!    outputs: values produced by the compiled path must lie inside the
//!    statically derived interval of the IR's output node.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use turl_audit::{align_with_graph, analyze_ranges, lower_model_plan};
use turl_core::{EncodedInput, EntityInput, TurlConfig, TurlModel};
use turl_exec::compile;
use turl_nn::{Forward, ParamStore};
use turl_tensor::Tensor;

const N_WORDS: usize = 40;
const N_KB_ENTITIES: usize = 15;

struct Case {
    cfg: TurlConfig,
    input: EncodedInput,
}

#[allow(clippy::too_many_arguments)]
fn build_case(
    seed: u64,
    tokens: usize,
    ents: usize,
    n_heads: usize,
    n_layers: usize,
    ln_eps: f32,
    masked: bool,
    fully_masked_row: bool,
    mention_lens: &[usize],
) -> Case {
    let mut cfg = TurlConfig::tiny(seed);
    cfg.encoder.n_heads = n_heads;
    cfg.encoder.n_layers = n_layers;
    cfg.encoder.ln_eps = ln_eps;
    cfg.use_visibility = masked;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let entities: Vec<EntityInput> = (0..ents)
        .map(|i| EntityInput {
            emb_index: rng.gen_range(0..=N_KB_ENTITIES),
            mention: (0..mention_lens[i % mention_lens.len()])
                .map(|_| rng.gen_range(0..N_WORDS))
                .collect(),
            type_idx: i % 3,
        })
        .collect();
    let n = tokens + ents;
    let mask = masked.then(|| {
        let mut m = Tensor::zeros(vec![n, n]);
        for v in m.data_mut().iter_mut() {
            if rng.gen::<f32>() < 0.4 {
                *v = -1e9;
            }
        }
        if fully_masked_row && n > 0 {
            // An element no other element may attend to: the fused
            // softmax must agree with the graph on the degenerate row.
            for j in 0..n {
                m.set2(0, j, -1e9);
            }
        }
        m
    });
    let input = EncodedInput {
        token_ids: (0..tokens).map(|_| rng.gen_range(0..N_WORDS)).collect(),
        token_types: (0..tokens).map(|i| i % 2).collect(),
        token_pos: (0..tokens).collect(),
        entities,
        mask,
    };
    Case { cfg, input }
}

/// Graph-path reference: one inference-mode tape encode.
fn graph_encode(case: &Case, store: &ParamStore, model: &TurlModel) -> Tensor {
    let mut rng = StdRng::seed_from_u64(0);
    let mut f = Forward::inference(store);
    let h = model.encode(&mut f, store, &mut rng, &case.input);
    f.graph.value(h).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_encode_is_bit_identical_to_graph(
        seed in 0u64..1_000,
        tokens in 0usize..9,
        ents in 0usize..6,
        head_pick in 0usize..3,
        n_layers in 1usize..3,
        eps_pick in 0usize..2,
        masked in any::<bool>(),
        fully_masked_row in any::<bool>(),
        mention_lens in proptest::collection::vec(0usize..4, 5),
    ) {
        prop_assume!(tokens + ents > 0);
        let n_heads = [1usize, 2, 4][head_pick];
        let ln_eps = [1e-5f32, 1e-3][eps_pick];
        let case = build_case(
            seed, tokens, ents, n_heads, n_layers, ln_eps, masked,
            fully_masked_row, &mention_lens,
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let model =
            TurlModel::new(&mut store, &mut rng, case.cfg, N_WORDS, N_KB_ENTITIES);
        let want = graph_encode(&case, &store, &model);

        let mut cf = model.compiled();
        let got = cf.encode(&model, &store, &case.input).expect("compiled encode");
        prop_assert_eq!(got.shape(), want.shape());
        for (i, (a, b)) in got.data().iter().zip(want.data().iter()).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "bit divergence at element {} ({} vs {})", i, a, b
            );
        }
    }
}

/// Schedule → IR → tape: the compiled schedule covers the lowered IR
/// exactly (no dropped, duplicated, or reordered node) while that IR
/// aligns op-for-op with a real tape forward of the same shape.
#[test]
fn compiled_schedule_covers_ir_that_aligns_with_tape() {
    for (tokens, ents, masked) in [(6, 3, true), (5, 2, false), (0, 4, true)] {
        let case = build_case(7, tokens, ents, 2, 2, 1e-5, masked, false, &[1, 2, 0]);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let model = TurlModel::new(&mut store, &mut rng, case.cfg, N_WORDS, N_KB_ENTITIES);

        let n_mention_tokens: usize = case.input.entities.iter().map(|e| e.mention.len()).sum();
        let mut plan = turl_core::audit::model_plan(
            &case.cfg,
            N_WORDS,
            N_KB_ENTITIES,
            tokens,
            ents,
            n_mention_tokens,
            0,
            0,
            0,
        );
        plan.use_visibility = masked;
        let ir = lower_model_plan(&plan).expect("plan lowers");
        let compiled = compile(&ir).expect("plan compiles");
        compiled.verify_covers(&ir).expect("schedule covers IR");

        // The same IR must still describe the runtime tape: an encode-only
        // inference forward aligns node-for-node.
        let mut f = Forward::inference(&store);
        let mut rng2 = StdRng::seed_from_u64(0);
        model.encode(&mut f, &store, &mut rng2, &case.input);
        let pairs = align_with_graph(&ir, &f.graph).expect("IR aligns with tape");
        let computed = ir.nodes().iter().filter(|n| !n.kind.is_source()).count();
        assert_eq!(pairs.len(), computed);

        // Chain the two: every step's materialized output maps to a tape
        // var of identical shape.
        for step in &compiled.steps {
            let (_, var) = pairs
                .iter()
                .find(|(tid, _)| *tid == step.out_id)
                .expect("step output must be an aligned IR node");
            assert_eq!(
                ir.node_at(step.out_id.index()).shape,
                f.graph.value(*var).shape(),
                "shape drift at step '{}'",
                step.label
            );
        }
    }
}

/// The PR-5 value-range analysis, re-checked against *executed* fused
/// kernels: every element the compiled path produces must lie inside
/// the statically proven interval of the IR output node (which also
/// proves NaN-freedom for freshly initialized parameters).
#[test]
fn compiled_outputs_lie_within_statically_analyzed_ranges() {
    for (tokens, ents, masked) in [(6, 3, true), (4, 2, false)] {
        let case = build_case(13, tokens, ents, 2, 2, 1e-5, masked, masked, &[2, 1, 3]);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let model = TurlModel::new(&mut store, &mut rng, case.cfg, N_WORDS, N_KB_ENTITIES);

        let n_mention_tokens: usize = case.input.entities.iter().map(|e| e.mention.len()).sum();
        let mut plan = turl_core::audit::model_plan(
            &case.cfg,
            N_WORDS,
            N_KB_ENTITIES,
            tokens,
            ents,
            n_mention_tokens,
            0,
            0,
            0,
        );
        plan.use_visibility = masked;
        let ir = lower_model_plan(&plan).expect("plan lowers");
        let analysis = analyze_ranges(&ir);
        let out_range = &analysis.ranges[ir.len() - 1];
        assert!(!out_range.can_be_nan, "encode output must be provably NaN-free");

        let mut cf = model.compiled();
        let got = cf.encode(&model, &store, &case.input).expect("compiled encode");
        for (i, &v) in got.data().iter().enumerate() {
            assert!(v.is_finite(), "non-finite compiled output at {i}");
            assert!(
                out_range.contains(v),
                "compiled output {v} at {i} escapes proven range {out_range}"
            );
        }
    }
}
