//! Extensions beyond the published system — the paper's future-work
//! direction (2): "Incorporating the rich information contained in an
//! external KB into pre-training".
//!
//! [`AuxRelationObjective`] adds a third pre-training loss: for entity
//! pairs that sit in the same row (subject cell, object cell), predict the
//! KB relation holding between them (or "no relation") from their
//! contextualized representations. This injects explicit relational
//! supervision on top of the purely co-occurrence-driven MER signal.

use crate::input::EncodedInput;
use crate::pretrain::Pretrainer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use turl_data::{EntityPosition, TableInstance};
use turl_kb::KnowledgeBase;
use turl_nn::{Forward, Linear, ParamStore};
use turl_tensor::Var;

/// One labeled pair: indices (into `inst.entities`) of the subject and
/// object cells, and the relation label (`n_relations` = "no relation").
pub type RelationPair = (usize, usize, usize);

/// The auxiliary KB-relation-prediction objective.
pub struct AuxRelationObjective {
    head: Linear,
    pairs: HashMap<String, Vec<RelationPair>>,
    /// Loss weight relative to MLM + MER.
    pub weight: f32,
    n_classes: usize,
}

impl AuxRelationObjective {
    /// Extract labeled same-row pairs for one table: every
    /// (subject-cell, object-cell) row pair, labeled with the first KB
    /// relation that holds, or the "no relation" class. At most
    /// `max_pairs` pairs are kept (positives first).
    pub fn relation_pairs(
        inst: &TableInstance,
        kb: &KnowledgeBase,
        max_pairs: usize,
        rng: &mut StdRng,
    ) -> Vec<RelationPair> {
        let no_rel = kb.schema.relations.len();
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for (i, a) in inst.entities.iter().enumerate() {
            let EntityPosition::Cell { row: ra, .. } = a.position else {
                continue;
            };
            if !a.is_subject {
                continue;
            }
            for (j, b) in inst.entities.iter().enumerate() {
                let EntityPosition::Cell { row: rb, .. } = b.position else {
                    continue;
                };
                if i == j || b.is_subject || ra != rb {
                    continue;
                }
                let label =
                    kb.facts_of(a.entity).iter().find(|&&(_, o)| o == b.entity).map(|&(r, _)| r);
                match label {
                    Some(r) => positives.push((i, j, r)),
                    None => negatives.push((i, j, no_rel)),
                }
            }
        }
        positives.shuffle(rng);
        negatives.shuffle(rng);
        // keep a bounded, positive-heavy mix
        let n_pos = positives.len().min(max_pairs * 3 / 4 + 1);
        let n_neg = negatives.len().min(max_pairs.saturating_sub(n_pos));
        positives.truncate(n_pos);
        positives.extend(negatives.into_iter().take(n_neg));
        positives
    }

    /// Build the objective over a pre-encoded corpus and register its head
    /// in `store`.
    pub fn build(
        store: &mut ParamStore,
        d_model: usize,
        kb: &KnowledgeBase,
        data: &[(TableInstance, EncodedInput)],
        weight: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_classes = kb.schema.relations.len() + 1;
        let head = Linear::new(store, &mut rng, "aux_rel.head", 2 * d_model, n_classes, true);
        let mut pairs = HashMap::new();
        for (inst, _) in data {
            let p = Self::relation_pairs(inst, kb, 8, &mut rng);
            if !p.is_empty() {
                pairs.insert(inst.table_id.clone(), p);
            }
        }
        Self { head, pairs, weight, n_classes }
    }

    /// Number of output classes (relations + "no relation").
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Fraction of corpus tables that contribute labeled pairs.
    pub fn coverage(&self, n_tables: usize) -> f64 {
        self.pairs.len() as f64 / n_tables.max(1) as f64
    }

    /// Relation-prediction loss for one encoded table, if it has pairs.
    pub fn loss(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        h: Var,
        inst: &TableInstance,
        enc: &EncodedInput,
    ) -> Option<Var> {
        let pairs = self.pairs.get(&inst.table_id)?;
        let rows_s: Vec<usize> = pairs.iter().map(|&(i, _, _)| enc.entity_row(i)).collect();
        let rows_o: Vec<usize> = pairs.iter().map(|&(_, j, _)| enc.entity_row(j)).collect();
        let targets: Vec<usize> = pairs.iter().map(|&(_, _, r)| r).collect();
        let hs = f.graph.index_select0(h, &rows_s);
        let ho = f.graph.index_select0(h, &rows_o);
        let cat = f.graph.concat_cols(&[hs, ho]);
        let logits = self.head.forward(f, store, cat);
        let ce = f.graph.cross_entropy(logits, &targets);
        Some(f.graph.scale(ce, self.weight))
    }

    /// Relation-prediction accuracy over a held-out encoded split
    /// (evaluation of the extension).
    pub fn accuracy<R: Rng>(
        &self,
        pt: &Pretrainer,
        kb: &KnowledgeBase,
        data: &[(TableInstance, EncodedInput)],
        rng: &mut R,
        max_pairs: usize,
    ) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut pair_rng = StdRng::seed_from_u64(0);
        for (inst, enc) in data {
            let pairs = Self::relation_pairs(inst, kb, 8, &mut pair_rng);
            if pairs.is_empty() {
                continue;
            }
            let mut f = Forward::inference(&pt.store);
            let h = pt.model.encode(&mut f, &pt.store, rng, enc);
            for (i, j, r) in pairs {
                let rows = [enc.entity_row(i)];
                let hs = f.graph.index_select0(h, &rows);
                let rows_o = [enc.entity_row(j)];
                let ho = f.graph.index_select0(h, &rows_o);
                let cat = f.graph.concat_cols(&[hs, ho]);
                let logits = self.head.forward(&mut f, &pt.store, cat);
                if f.graph.value(logits).argmax() == r {
                    correct += 1;
                }
                total += 1;
                if total >= max_pairs {
                    return correct as f64 / total as f64;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use turl_data::{LinearizeConfig, Vocab};
    use turl_kb::{
        generate_corpus, identify_relational, CooccurrenceIndex, CorpusConfig, PipelineConfig,
        WorldConfig,
    };

    fn setup() -> (KnowledgeBase, Vocab, Vec<(TableInstance, EncodedInput)>, CooccurrenceIndex) {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(700));
        let tables = identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 50, ..CorpusConfig::tiny(701) }),
            &PipelineConfig::default(),
        );
        let texts: Vec<String> = tables
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let cfg = TurlConfig::tiny(702);
        let data = tables
            .iter()
            .map(|t| {
                let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
                let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
                (inst, enc)
            })
            .collect();
        let cooccur = CooccurrenceIndex::build(&tables);
        (kb, vocab, data, cooccur)
    }

    #[test]
    fn relation_pairs_are_correctly_labeled() {
        let (kb, _, data, _) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut n_pos = 0;
        for (inst, _) in &data {
            for (i, j, r) in AuxRelationObjective::relation_pairs(inst, &kb, 8, &mut rng) {
                let s = inst.entities[i].entity;
                let o = inst.entities[j].entity;
                if r < kb.schema.relations.len() {
                    assert!(kb.has_fact(s, r, o), "labeled pair must be a KB fact");
                    n_pos += 1;
                } else {
                    assert!(!kb.facts_of(s).iter().any(|&(_, obj)| obj == o));
                }
            }
        }
        assert!(n_pos > 10, "expected positive pairs in a generated corpus: {n_pos}");
    }

    #[test]
    fn aux_objective_trains_and_improves_relation_accuracy() {
        let (kb, vocab, data, cooccur) = setup();
        let cfg = TurlConfig::tiny(703);
        let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let aux =
            AuxRelationObjective::build(&mut pt.store, pt.model.d_model(), &kb, &data, 0.5, 704);
        assert!(aux.coverage(data.len()) > 0.3, "coverage {}", aux.coverage(data.len()));
        let mut rng = StdRng::seed_from_u64(2);
        let acc0 = aux.accuracy(&pt, &kb, &data, &mut rng, 100);
        pt.set_aux_relations(aux);
        pt.train(&data, &cooccur, 8);
        let aux = pt.take_aux_relations().expect("aux objective still installed");
        let acc1 = aux.accuracy(&pt, &kb, &data, &mut rng, 100);
        assert!(
            acc1 > acc0,
            "auxiliary relation prediction did not improve: {acc0:.3} -> {acc1:.3}"
        );
    }
}
