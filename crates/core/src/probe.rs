//! The §6.8 evaluation probe: object-entity prediction on the validation
//! set, used to compare pre-training variants (Figure 7a/7b).
//!
//! "Given a table in our validation set, we predict each object entity by
//! first masking the entity cell (both e^e and e^m) and obtaining a
//! contextualized representation of the `[MASK]` ... then applying Eqn. 6.
//! We compare the top-1 predicted entity with the ground truth."

use crate::input::EncodedInput;
use crate::model::TurlModel;
use crate::pretrain::build_candidates;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{EntityPosition, TableInstance};
use turl_kb::CooccurrenceIndex;
use turl_nn::ParamStore;

/// Top-1 accuracy of object-entity prediction over pre-encoded validation
/// tables. `max_cells` bounds the probed cells for speed.
///
/// Encodes run through the compiled forward plan
/// ([`crate::CompiledForward`]) — graph-free and bit-exact with the
/// tape, so probe numbers are unchanged from the graph implementation
/// while each cell skips the tape/grad bookkeeping.
pub fn object_entity_accuracy(
    model: &TurlModel,
    store: &ParamStore,
    data: &[(TableInstance, EncodedInput)],
    cooccur: &CooccurrenceIndex,
    mask_word_id: usize,
    seed: u64,
    max_cells: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cf = model.compiled();
    let mut correct = 0usize;
    let mut total = 0usize;
    'outer: for (inst, clean) in data {
        let candidates = build_candidates(&mut rng, inst, cooccur, &model.cfg, model.n_entities());
        for (i, item) in inst.entities.iter().enumerate() {
            // object entities only: non-subject content cells
            let is_object =
                matches!(item.position, EntityPosition::Cell { .. }) && !item.is_subject;
            if !is_object {
                continue;
            }
            let gold = item.entity as usize;
            let Some(gold_pos) = candidates.iter().position(|&c| c == gold) else {
                continue;
            };
            let mut enc = clean.clone();
            enc.mask_entity(i, true, mask_word_id);
            let h = cf.encode(model, store, &enc).expect("compiled probe encode");
            let logits = cf
                .mer_logits(model, store, &h, &[enc.entity_row(i)], &candidates)
                .expect("compiled probe mer head");
            let pred = logits.argmax();
            if pred == gold_pos {
                correct += 1;
            }
            total += 1;
            if total >= max_cells {
                break 'outer;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use turl_data::{LinearizeConfig, Vocab};
    use turl_kb::{
        generate_corpus, identify_relational, CorpusConfig, KnowledgeBase, PipelineConfig,
        WorldConfig,
    };

    #[test]
    fn probe_runs_and_pretraining_helps() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(17));
        let tables = identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 30, ..CorpusConfig::tiny(18) }),
            &PipelineConfig::default(),
        );
        let texts: Vec<String> = tables
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let cfg = TurlConfig::tiny(3);
        let data: Vec<(TableInstance, EncodedInput)> = tables
            .iter()
            .map(|t| {
                let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
                let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
                (inst, enc)
            })
            .collect();
        let cooccur = CooccurrenceIndex::build(&tables);
        let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let acc_before = object_entity_accuracy(
            &pt.model,
            &pt.store,
            &data,
            &cooccur,
            vocab.mask_id() as usize,
            0,
            60,
        );
        pt.train(&data, &cooccur, 8);
        let acc_after = object_entity_accuracy(
            &pt.model,
            &pt.store,
            &data,
            &cooccur,
            vocab.mask_id() as usize,
            0,
            60,
        );
        assert!(
            acc_after > acc_before,
            "probe accuracy did not improve: {acc_before} -> {acc_after}"
        );
    }
}
