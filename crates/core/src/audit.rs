//! Adapters between [`TurlConfig`] and the `turl-audit` static analyzers.
//!
//! `turl-audit` deliberately knows nothing about this crate (the model
//! crate depends on the auditor, not vice versa), so this module
//! translates a [`TurlConfig`] plus corpus statistics into the plain
//! [`ModelPlan`] the symbolic checker consumes, and bundles the §4.4
//! ratio validation that every constructed model must pass.

use crate::config::TurlConfig;
use turl_audit::{
    check_model_plan, validate_masking_config, AuditError, ModelPlan, PlanNumerics, PlanReport,
};

/// Shape of the probe sequence used by [`validate_config`]'s plan check.
///
/// Small on purpose: the symbolic check is shape-generic, so a compact
/// sequence exercises every op without slowing model construction.
const PROBE_TOKENS: usize = 8;
const PROBE_ENTITIES: usize = 4;
const PROBE_MENTION_TOKENS: usize = 6;
const PROBE_MLM_TARGETS: usize = 2;
const PROBE_MER_TARGETS: usize = 2;
const PROBE_CANDIDATES: usize = 8;

/// Build the symbolic forward plan for `cfg` at an explicit sequence
/// shape. `n_entities` excludes the `[MASK]` row, matching
/// `TurlModel::new`.
#[allow(clippy::too_many_arguments)]
pub fn model_plan(
    cfg: &TurlConfig,
    n_words: usize,
    n_entities: usize,
    n_tokens: usize,
    n_seq_entities: usize,
    n_mention_tokens: usize,
    n_mlm_targets: usize,
    n_mer_targets: usize,
    n_candidates: usize,
) -> ModelPlan {
    ModelPlan {
        n_layers: cfg.encoder.n_layers,
        d_model: cfg.encoder.d_model,
        d_intermediate: cfg.encoder.d_intermediate,
        n_heads: cfg.encoder.n_heads,
        n_words,
        n_entities,
        max_position: cfg.max_position,
        n_tokens,
        n_seq_entities,
        n_mention_tokens,
        use_visibility: cfg.use_visibility,
        n_mlm_targets,
        n_mer_targets,
        n_candidates,
        numerics: PlanNumerics {
            ln_eps: f64::from(cfg.encoder.ln_eps),
            // The runtime uses -1e9 (see EncodedInput::mask construction);
            // embedding tables keep the default N(0, 0.02) sampler bound.
            ..PlanNumerics::default()
        },
    }
}

/// Statically validate `cfg` for a vocabulary of `n_words` words and
/// `n_entities` entities: the §4.4 masking ratios must be well-formed and
/// a full symbolic forward pass (both pre-training heads included) must
/// type-check. Runs in microseconds and allocates no tensors.
pub fn validate_config(
    cfg: &TurlConfig,
    n_words: usize,
    n_entities: usize,
) -> Result<PlanReport, AuditError> {
    validate_masking_config(
        cfg.pretrain.mlm_select_ratio,
        cfg.pretrain.mer_select_ratio,
        cfg.pretrain.mer_mention_keep_share,
    )?;
    let plan = model_plan(
        cfg,
        n_words,
        n_entities,
        PROBE_TOKENS,
        PROBE_ENTITIES,
        PROBE_MENTION_TOKENS,
        PROBE_MLM_TARGETS,
        PROBE_MER_TARGETS,
        PROBE_CANDIDATES.min(n_entities.max(1)),
    );
    check_model_plan(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stock_config_validates() {
        for cfg in [TurlConfig::paper(), TurlConfig::small(1), TurlConfig::tiny(1)] {
            let report = validate_config(&cfg, 1000, 500).expect("stock config must validate");
            assert_eq!(report.seq_len, PROBE_TOKENS + PROBE_ENTITIES);
        }
    }

    #[test]
    fn corrupted_ratio_is_caught() {
        let mut cfg = TurlConfig::tiny(1);
        cfg.pretrain.mer_select_ratio = 1.5;
        match validate_config(&cfg, 1000, 500) {
            Err(AuditError::RatioOutOfRange { field, .. }) => {
                assert_eq!(field, "mer_select_ratio");
            }
            other => panic!("expected ratio error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_head_count_is_caught() {
        let mut cfg = TurlConfig::tiny(1);
        cfg.encoder.n_heads = 3; // tiny d_model = 16, not divisible
        assert!(matches!(
            validate_config(&cfg, 1000, 500),
            Err(AuditError::BadConfig { field: "d_model % n_heads", .. })
        ));
    }
}
