//! Shared fine-tuning machinery: batched epochs over task examples with
//! Adam and gradient clipping ("we initialize the parameters with a
//! pre-trained model, and further train all parameters with a
//! task-specific objective", §6.1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use turl_nn::{clip_grad_norm, Adam, AdamConfig, ParamStore};

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinetuneConfig {
    /// Epochs (the paper fine-tunes 10 epochs for most tasks).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Gradient clipping threshold.
    pub max_grad_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self { epochs: 10, lr: 1e-3, batch_size: 8, max_grad_norm: 5.0, seed: 0 }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Default)]
pub struct FinetuneStats {
    /// Mean per-example loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken.
    pub steps: u64,
}

impl FinetuneStats {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Run batched epochs: `step(example_index, store)` must run one forward /
/// backward pass (accumulating gradients into `store`) and return the loss.
pub fn train_batched(
    cfg: &FinetuneConfig,
    store: &mut ParamStore,
    n_examples: usize,
    mut step: impl FnMut(usize, &mut ParamStore) -> f32,
) -> FinetuneStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut stats = FinetuneStats::default();
    for _ in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..n_examples).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut n = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            for &i in chunk {
                epoch_loss += step(i, store);
                n += 1;
            }
            clip_grad_norm(store, cfg.max_grad_norm);
            opt.step(store);
            stats.steps += 1;
        }
        stats.epoch_losses.push(epoch_loss / n.max(1) as f32);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_nn::Forward;
    use turl_tensor::Tensor;

    #[test]
    fn train_batched_converges_on_regression() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::zeros(vec![1]));
        // fit w to minimize (w - i mod 2)² over examples; optimum w = 0.5
        let cfg = FinetuneConfig { epochs: 30, lr: 0.1, batch_size: 2, ..Default::default() };
        let stats = train_batched(&cfg, &mut store, 4, |i, store| {
            let target = (i % 2) as f32;
            let mut f = Forward::new(store);
            let wv = f.param(store, w);
            let t = f.graph.constant(Tensor::scalar(target));
            let d = f.graph.sub(wv, t);
            let sq = f.graph.mul(d, d);
            let l = f.graph.sum_all(sq);
            let out = f.graph.value(l).item();
            f.backprop(l, store);
            out
        });
        assert_eq!(stats.epoch_losses.len(), 30);
        assert!((store.value(w).data()[0] - 0.5).abs() < 0.1);
        assert!(stats.final_loss() < stats.epoch_losses[0]);
        assert!(stats.steps == 60);
    }
}
