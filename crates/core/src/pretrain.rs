//! Pre-training: the §4.4 masking mechanics (MLM + MER), candidate-set
//! construction, and the training loop.

use crate::config::TurlConfig;
use crate::extensions::AuxRelationObjective;
use crate::input::EncodedInput;
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::PathBuf;
use turl_data::TableInstance;
use turl_kb::CooccurrenceIndex;
use turl_nn::{
    clip_grad_norm, prune_checkpoints, restore_params, save_trainer_checkpoint, snapshot_params,
    Adam, AdamConfig, Forward, LinearDecaySchedule, ParamStore, ProgressState, RngStateRepr,
    SerializeError, TrainerCheckpoint, CHECKPOINT_VERSION,
};
use turl_tensor::pool;

/// The masking decisions for one table: which positions were selected and
/// what their recovery targets are.
#[derive(Debug, Clone, Default)]
pub struct MaskPlan {
    /// `(token position, original word id)` pairs selected for MLM.
    pub mlm: Vec<(usize, usize)>,
    /// `(entity cell index, original entity id)` pairs selected for MER.
    pub mer: Vec<(usize, usize)>,
}

/// First id after the reserved special tokens (`[PAD] [UNK] [MASK] [CLS]`
/// occupy `0..4` in every [`turl_data::Vocab`]).
const FIRST_NON_SPECIAL_WORD: usize = 4;

/// Bounded resample attempts when a draw must avoid one excluded value.
const RESAMPLE_TRIES: usize = 8;

/// Draw a random non-special word id for the MLM 10% "random word" branch,
/// resampling (bounded) away from `mask_word_id`. Returns `None` when the
/// vocabulary has no usable id — callers keep the token unchanged then,
/// never emit an id outside `0..n_words`.
pub fn random_word_id<R: Rng>(rng: &mut R, n_words: usize, mask_word_id: usize) -> Option<usize> {
    if n_words <= FIRST_NON_SPECIAL_WORD {
        return None;
    }
    for _ in 0..RESAMPLE_TRIES {
        let id = rng.gen_range(FIRST_NON_SPECIAL_WORD..n_words);
        if id != mask_word_id {
            return Some(id);
        }
    }
    None
}

/// Draw a random entity id for the MER 10% noise branch, resampling
/// (bounded) away from the gold entity so the noise case never collapses
/// into a silent keep. `None` when no other entity exists.
pub fn random_entity_id<R: Rng>(rng: &mut R, n_entities: usize, gold: usize) -> Option<usize> {
    if n_entities <= 1 {
        return None;
    }
    for _ in 0..RESAMPLE_TRIES {
        let id = rng.gen_range(0..n_entities);
        if id != gold {
            return Some(id);
        }
    }
    None
}

/// Apply the §4.4 masking mechanism to an encoded input, in place.
///
/// MLM: `mlm_select_ratio` of token positions; of those 80% become
/// `[MASK]`, 10% a random word, 10% unchanged.
///
/// MER: `mer_select_ratio` of entity cells; of those 10% keep both `e^m`
/// and `e^e`, 63% mask both, 27% keep the mention and mask only the entity
/// (10% of which get a random entity instead of `[MASK]`).
pub fn apply_mask_plan<R: Rng>(
    rng: &mut R,
    enc: &mut EncodedInput,
    cfg: &TurlConfig,
    mask_word_id: usize,
    n_words: usize,
    n_entities: usize,
) -> MaskPlan {
    let mut plan = MaskPlan::default();
    for pos in 0..enc.token_ids.len() {
        if rng.gen::<f64>() >= cfg.pretrain.mlm_select_ratio {
            continue;
        }
        plan.mlm.push((pos, enc.token_ids[pos]));
        let roll = rng.gen::<f64>();
        if roll < 0.8 {
            enc.token_ids[pos] = mask_word_id;
        } else if roll < 0.9 {
            if let Some(id) = random_word_id(rng, n_words, mask_word_id) {
                enc.token_ids[pos] = id;
            } // else: vocabulary has no non-special word — keep unchanged
        } // else: keep unchanged
    }
    for cell in 0..enc.entities.len() {
        if rng.gen::<f64>() >= cfg.pretrain.mer_select_ratio {
            continue;
        }
        let original = enc.entities[cell].emb_index.checked_sub(1).expect("unmasked input");
        plan.mer.push((cell, original));
        let roll = rng.gen::<f64>();
        // 10% keep both; of the remaining 90%, `mer_mention_keep_share`
        // keeps the mention (paper: 30% -> the 63%/27% split of Section 4.4)
        let mask_both_upto = 0.1 + 0.9 * (1.0 - cfg.pretrain.mer_mention_keep_share);
        if roll < 0.1 {
            // keep both
        } else if roll < mask_both_upto {
            enc.mask_entity(cell, true, mask_word_id);
        } else {
            // keep mention, mask entity; 10% random-entity noise (which
            // must not draw the gold entity back — that would silently
            // turn the noise case into a keep)
            if rng.gen::<f64>() < 0.1 {
                match random_entity_id(rng, n_entities, original) {
                    Some(e) => enc.replace_entity(cell, e),
                    None => enc.mask_entity(cell, false, mask_word_id),
                }
            } else {
                enc.mask_entity(cell, false, mask_word_id);
            }
        }
    }
    plan
}

/// Build the MER candidate set for a table (Eqn. 6): the table's own
/// entities, entities co-occurring with them, and random negatives.
/// Returns entity ids (unshifted) in a deterministic order.
pub fn build_candidates<R: Rng>(
    rng: &mut R,
    inst: &TableInstance,
    cooccur: &CooccurrenceIndex,
    cfg: &TurlConfig,
    n_entities: usize,
) -> Vec<usize> {
    let mut set: HashSet<usize> = HashSet::new();
    let mut out: Vec<usize> = Vec::new();
    if cfg.candidates.use_table_entities {
        for e in &inst.entities {
            if set.insert(e.entity as usize) {
                out.push(e.entity as usize);
            }
        }
    }
    let mut co: Vec<usize> = Vec::new();
    for e in &inst.entities {
        for &c in cooccur.cooccurring(e.entity) {
            co.push(c as usize);
        }
    }
    co.sort_unstable();
    co.dedup();
    co.shuffle(rng);
    for c in co.into_iter().take(cfg.candidates.max_cooccurring) {
        if set.insert(c) {
            out.push(c);
        }
    }
    let mut guard = 0;
    let mut added = 0;
    while added < cfg.candidates.n_random_negatives
        && guard < 10 * cfg.candidates.n_random_negatives
    {
        guard += 1;
        let e = rng.gen_range(0..n_entities);
        if set.insert(e) {
            out.push(e);
            added += 1;
        }
    }
    out
}

/// Aggregate statistics of a pre-training run.
#[derive(Debug, Clone, Default)]
pub struct PretrainStats {
    /// Optimizer steps taken (batches that actually updated parameters;
    /// matches `opt.steps()`, which the LR schedule keys on).
    pub steps: u64,
    /// Mean combined loss per table, by epoch.
    pub epoch_losses: Vec<f32>,
    /// Batches dropped because their gradient norm was non-finite.
    pub non_finite_skips: u64,
}

/// What one call to [`Pretrainer::train_step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The optimizer stepped; carries the mean loss over the batch.
    Stepped(f32),
    /// Masking selected nothing in any table — no forward pass, no step.
    /// The batch must not be counted in loss means or step counters.
    Empty,
    /// The gradient norm was non-finite: gradients were zeroed and the
    /// optimizer step skipped so one bad batch cannot poison Adam state.
    SkippedNonFinite,
}

impl StepOutcome {
    /// The batch loss, when a step was taken.
    pub fn loss(self) -> Option<f32> {
        match self {
            StepOutcome::Stepped(l) => Some(l),
            _ => None,
        }
    }
}

/// Where, how often, and how many trainer checkpoints to keep.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory for `ckpt-<step>.json` files (created on first save).
    pub dir: PathBuf,
    /// Save every N optimizer steps (0 = only at the end of training).
    pub every_steps: u64,
    /// Newest checkpoints retained after each save.
    pub keep_last: usize,
}

/// The pre-training driver: owns the model, its parameters and optimizer.
pub struct Pretrainer {
    /// Model configuration.
    pub cfg: TurlConfig,
    /// The TURL model.
    pub model: TurlModel,
    /// Parameter store.
    pub store: ParamStore,
    /// Optimizer.
    pub opt: Adam,
    mask_word_id: usize,
    n_words: usize,
    n_entities: usize,
    rng: StdRng,
    aux_relations: Option<AuxRelationObjective>,
    schedule: Option<LinearDecaySchedule>,
    progress: ProgressState,
    /// Reusable per-batch-slot forward contexts: tape storage and
    /// parameter bindings are recycled across steps instead of
    /// reallocated (see `Graph::reset`).
    scratch: Vec<Forward>,
}

impl Pretrainer {
    /// Create a pre-trainer for a vocabulary of `n_words` words,
    /// `n_entities` entities, with `[MASK]` at `mask_word_id`.
    pub fn new(cfg: TurlConfig, n_words: usize, n_entities: usize, mask_word_id: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let model = TurlModel::new(&mut store, &mut rng, cfg, n_words, n_entities);
        let opt = Adam::new(AdamConfig { lr: cfg.pretrain.learning_rate, ..Default::default() });
        Self {
            cfg,
            model,
            store,
            opt,
            mask_word_id,
            n_words,
            n_entities,
            rng,
            aux_relations: None,
            schedule: None,
            progress: ProgressState::default(),
            scratch: Vec::new(),
        }
    }

    /// Training-loop position (epochs/steps completed, loss history).
    pub fn progress(&self) -> &ProgressState {
        &self.progress
    }

    /// Use the paper's linearly decreasing learning rate over a planned
    /// number of optimizer steps (optionally with warmup).
    pub fn set_schedule(&mut self, schedule: LinearDecaySchedule) {
        self.schedule = Some(schedule);
    }

    /// Install the KB-relation auxiliary objective (the paper's
    /// future-work extension; see [`crate::AuxRelationObjective`]).
    pub fn set_aux_relations(&mut self, aux: AuxRelationObjective) {
        self.aux_relations = Some(aux);
    }

    /// Remove and return the auxiliary objective.
    pub fn take_aux_relations(&mut self) -> Option<AuxRelationObjective> {
        self.aux_relations.take()
    }

    /// One optimizer step over a batch of tables. Returns whether a step
    /// was actually taken: a batch where masking selects nothing is
    /// [`StepOutcome::Empty`] (no forward pass runs and the optimizer is
    /// untouched, so callers must not count it), and a batch whose
    /// gradient norm is non-finite is [`StepOutcome::SkippedNonFinite`].
    ///
    /// Data-parallel: masking decisions, candidate sets, and per-table RNG
    /// seeds are drawn **serially** from the trainer RNG (so the random
    /// stream is independent of the thread count), then each table's
    /// forward/backward pass fans out to the [`pool`] workers, and the
    /// per-table gradients are sum-reduced into the shared [`ParamStore`]
    /// in batch order. The fixed reduction order keeps seeded runs
    /// bit-identical across `--threads` settings.
    pub fn train_step(
        &mut self,
        batch: &[(TableInstance, EncodedInput)],
        cooccur: &CooccurrenceIndex,
    ) -> StepOutcome {
        /// Per-slot telemetry; written only when metrics are enabled and
        /// read only after the parallel phase joins.
        #[derive(Debug, Default, Clone, Copy)]
        struct SlotObs {
            fwd_ns: u64,
            bwd_ns: u64,
            mlm_loss: f32,
            mer_loss: f32,
        }

        struct Slot {
            batch_idx: usize,
            enc: EncodedInput,
            plan: MaskPlan,
            candidates: Vec<usize>,
            seed: u64,
            fwd: Forward,
            out: Option<(f32, Vec<(turl_nn::ParamId, turl_tensor::Tensor)>)>,
            obs: SlotObs,
        }

        // Observation is read-only (clocks + counts): nothing below may
        // touch the trainer RNG or reorder the reduction, which is what
        // keeps metrics-on and metrics-off runs bit-identical.
        let obs_on = turl_obs::metrics_enabled();
        let prep_timer = turl_obs::Timer::start();
        let mut mask_counts = [0u64; 4]; // mlm sel, mlm total, mer sel, mer total

        // Serial phase: all randomness for the step, in batch order.
        let mut prepared: Vec<(usize, EncodedInput, MaskPlan, Vec<usize>, u64)> = Vec::new();
        for (batch_idx, (inst, clean)) in batch.iter().enumerate() {
            let mut enc = clean.clone();
            let plan = apply_mask_plan(
                &mut self.rng,
                &mut enc,
                &self.cfg,
                self.mask_word_id,
                self.n_words,
                self.n_entities,
            );
            if obs_on {
                // count every table — including ones masking skipped — so
                // observed ratios compare against the §4.4 targets honestly
                mask_counts[0] += plan.mlm.len() as u64;
                mask_counts[1] += enc.token_ids.len() as u64;
                mask_counts[2] += plan.mer.len() as u64;
                mask_counts[3] += enc.entities.len() as u64;
            }
            if plan.mlm.is_empty() && plan.mer.is_empty() {
                continue;
            }
            let mut candidates =
                build_candidates(&mut self.rng, inst, cooccur, &self.cfg, self.n_entities);
            // The recovery targets must be scoreable even under candidate-set
            // ablations that drop table entities.
            for &(_, gold) in &plan.mer {
                if !candidates.contains(&gold) {
                    candidates.push(gold);
                }
            }
            let seed = self.rng.gen::<u64>();
            prepared.push((batch_idx, enc, plan, candidates, seed));
        }
        if prepared.is_empty() {
            if obs_on {
                turl_obs::counter("empty_batches").inc();
                turl_obs::emit("empty_batch", vec![("tables", batch.len().into())]);
            }
            return StepOutcome::Empty;
        }
        while self.scratch.len() < prepared.len() {
            self.scratch.push(Forward::new(&self.store));
        }
        let mut slots: Vec<Slot> = prepared
            .into_iter()
            .map(|(batch_idx, enc, plan, candidates, seed)| Slot {
                batch_idx,
                enc,
                plan,
                candidates,
                seed,
                fwd: self.scratch.pop().expect("scratch refilled above"),
                out: None,
                obs: SlotObs::default(),
            })
            .collect();
        let prep_ns = prep_timer.elapsed_ns();
        let par_timer = turl_obs::Timer::start();

        // Parallel phase: one independent forward/backward per table.
        let model = &self.model;
        let store = &self.store;
        let aux = self.aux_relations.as_ref();
        pool::parallel_for_each_mut(&mut slots, |_, slot| {
            let fwd_timer = turl_obs::Timer::start();
            let inst = &batch[slot.batch_idx].0;
            let enc = &slot.enc;
            let f = &mut slot.fwd;
            f.reset(true);
            let mut rng = StdRng::seed_from_u64(slot.seed);
            let h = model.encode(f, store, &mut rng, enc);
            let mut losses: Vec<turl_tensor::Var> = Vec::new();
            let mut mlm_var = None;
            let mut mer_var = None;
            if !slot.plan.mlm.is_empty() {
                let rows: Vec<usize> = slot.plan.mlm.iter().map(|&(p, _)| p).collect();
                let targets: Vec<usize> = slot.plan.mlm.iter().map(|&(_, t)| t).collect();
                let logits = model.mlm_logits(f, store, h, &rows);
                let l = f.graph.cross_entropy(logits, &targets);
                mlm_var = Some(l);
                losses.push(l);
            }
            if !slot.plan.mer.is_empty() {
                let rows: Vec<usize> =
                    slot.plan.mer.iter().map(|&(c, _)| enc.entity_row(c)).collect();
                let targets: Vec<usize> = slot
                    .plan
                    .mer
                    .iter()
                    .map(|&(_, e)| {
                        slot.candidates.iter().position(|&c| c == e).expect("gold in candidates")
                    })
                    .collect();
                let logits = model.mer_logits(f, store, h, &rows, &slot.candidates);
                let l = f.graph.cross_entropy(logits, &targets);
                mer_var = Some(l);
                losses.push(l);
            }
            if let Some(aux) = aux {
                if let Some(l) = aux.loss(f, store, h, inst, enc) {
                    losses.push(l);
                }
            }
            let mut loss = losses[0];
            for &extra in &losses[1..] {
                loss = f.graph.add(loss, extra);
            }
            let loss_value = f.graph.value(loss).item();
            if obs_on {
                // reading already-computed tape values is free of side
                // effects; the MLM/MER split powers the per-step breakdown
                slot.obs.fwd_ns = fwd_timer.elapsed_ns();
                slot.obs.mlm_loss = mlm_var.map(|v| f.graph.value(v).item()).unwrap_or(0.0);
                slot.obs.mer_loss = mer_var.map(|v| f.graph.value(v).item()).unwrap_or(0.0);
            }
            let bwd_timer = turl_obs::Timer::start();
            f.graph.backward(loss);
            // Debug builds audit the full autograd tape every step: node
            // order, grad shapes, orphaned leaves, finite leaf values.
            #[cfg(debug_assertions)]
            if let Err(errs) = turl_audit::audit_tape(&f.graph, true) {
                panic!("tape audit failed after backprop: {}", errs[0]);
            }
            slot.obs.bwd_ns = bwd_timer.elapsed_ns();
            slot.out = Some((loss_value, f.take_param_grads()));
        });
        let par_ns = par_timer.elapsed_ns();

        // Serial reduction, in batch order, for thread-count-independent
        // floating-point results.
        let reduce_timer = turl_obs::Timer::start();
        let mut total = 0.0f32;
        let mut obs_sums = SlotObs::default();
        let counted = slots.len();
        for slot in slots {
            let (loss_value, grads) = slot.out.expect("worker filled every slot");
            total += loss_value;
            if obs_on {
                obs_sums.fwd_ns += slot.obs.fwd_ns;
                obs_sums.bwd_ns += slot.obs.bwd_ns;
                obs_sums.mlm_loss += slot.obs.mlm_loss;
                obs_sums.mer_loss += slot.obs.mer_loss;
            }
            self.store.accumulate(grads);
            self.scratch.push(slot.fwd);
        }
        let reduce_ns = reduce_timer.elapsed_ns();
        let opt_timer = turl_obs::Timer::start();
        if let Some(s) = &self.schedule {
            self.opt.config.lr = s.lr_at(self.opt.steps());
        }
        let clip = clip_grad_norm(&mut self.store, self.cfg.pretrain.max_grad_norm);
        if clip.non_finite {
            // `clip_grad_norm` already zeroed the gradients; skipping the
            // optimizer step keeps Adam's moments and the step counter
            // untouched, so training survives one bad batch.
            if obs_on {
                turl_obs::counter("non_finite_skips").inc();
                turl_obs::emit(
                    "non_finite_skip",
                    vec![("grad_norm", f64::from(clip.norm).into()), ("tables", counted.into())],
                );
            }
            return StepOutcome::SkippedNonFinite;
        }
        self.opt.step(&mut self.store);
        let mean = total / counted as f32;
        if obs_on {
            // Per-slot fwd/bwd sums are CPU time (they overlap across
            // workers); scale them to the measured wall-clock parallel
            // phase so the phase breakdown stays a wall-clock partition.
            let cpu_total = obs_sums.fwd_ns + obs_sums.bwd_ns;
            let (fwd_ns, bwd_ns) = if cpu_total > 0 {
                let fwd = par_ns as f64 * obs_sums.fwd_ns as f64 / cpu_total as f64;
                (fwd as u64, par_ns.saturating_sub(fwd as u64))
            } else {
                (par_ns, 0)
            };
            turl_obs::set_step(self.opt.steps());
            turl_obs::histogram("step_loss", &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
                .observe(f64::from(mean));
            turl_obs::emit(
                "step",
                vec![
                    ("loss", f64::from(mean).into()),
                    ("mlm_loss", f64::from(obs_sums.mlm_loss / counted as f32).into()),
                    ("mer_loss", f64::from(obs_sums.mer_loss / counted as f32).into()),
                    ("grad_norm", f64::from(clip.norm).into()),
                    ("clipped", clip.clipped.into()),
                    ("lr", f64::from(self.opt.config.lr).into()),
                    ("tables", counted.into()),
                    ("prep_ns", prep_ns.into()),
                    ("forward_ns", fwd_ns.into()),
                    ("backward_ns", bwd_ns.into()),
                    ("reduce_ns", reduce_ns.into()),
                    ("opt_ns", opt_timer.elapsed_ns().into()),
                    ("mlm_selected", mask_counts[0].into()),
                    ("mlm_candidates", mask_counts[1].into()),
                    ("mer_selected", mask_counts[2].into()),
                    ("mer_candidates", mask_counts[3].into()),
                ],
            );
        }
        StepOutcome::Stepped(mean)
    }

    /// Train for `epochs` *additional* passes over pre-encoded tables.
    pub fn train(
        &mut self,
        data: &[(TableInstance, EncodedInput)],
        cooccur: &CooccurrenceIndex,
        epochs: usize,
    ) -> PretrainStats {
        let target = self.progress.epoch as usize + epochs;
        self.train_until(data, cooccur, target, None)
            .expect("checkpoint I/O cannot fail without a policy")
    }

    /// Train until `total_epochs` epochs have been completed over the
    /// run's lifetime (counting epochs restored from a checkpoint),
    /// optionally saving crash-safe checkpoints along the way.
    ///
    /// Resume contract: restore a [`TrainerCheckpoint`] into a freshly
    /// constructed `Pretrainer` with identical config/vocabulary, then
    /// call this with the same `data` and target — the continued run is
    /// bit-identical to one that was never interrupted, including
    /// mid-epoch interruptions (the in-progress epoch's shuffled order
    /// and loss accumulators travel in the checkpoint).
    pub fn train_until(
        &mut self,
        data: &[(TableInstance, EncodedInput)],
        cooccur: &CooccurrenceIndex,
        total_epochs: usize,
        policy: Option<&CheckpointPolicy>,
    ) -> Result<PretrainStats, SerializeError> {
        let batch = self.cfg.pretrain.batch_size.max(1);
        let obs_on = turl_obs::metrics_enabled();
        if obs_on {
            turl_obs::set_step(self.opt.steps());
            turl_obs::set_epoch(self.progress.epoch);
            turl_obs::emit(
                "run_start",
                vec![
                    ("mlm_target", self.cfg.pretrain.mlm_select_ratio.into()),
                    ("mer_target", self.cfg.pretrain.mer_select_ratio.into()),
                    ("tables", data.len().into()),
                    ("batch_size", batch.into()),
                    ("total_epochs", total_epochs.into()),
                    ("threads", pool::n_threads().into()),
                    (
                        "available_cores",
                        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).into(),
                    ),
                ],
            );
        }
        while (self.progress.epoch as usize) < total_epochs {
            let epoch_span = turl_obs::span("epoch");
            if obs_on {
                turl_obs::set_epoch(self.progress.epoch);
            }
            if self.progress.order.is_empty() {
                let mut order: Vec<u64> = (0..data.len() as u64).collect();
                order.shuffle(&mut self.rng);
                self.progress.order = order;
                self.progress.batch_in_epoch = 0;
                self.progress.epoch_loss_sum = 0.0;
                self.progress.epoch_batches = 0;
            } else if self.progress.order.len() != data.len() {
                return Err(SerializeError::InvalidState(format!(
                    "resumed epoch order covers {} tables but the dataset has {} — \
                     resume must use the same data as the interrupted run",
                    self.progress.order.len(),
                    data.len()
                )));
            }
            let n = self.progress.order.len();
            let n_batches = n.div_ceil(batch);
            while (self.progress.batch_in_epoch as usize) < n_batches {
                let start = self.progress.batch_in_epoch as usize * batch;
                let end = (start + batch).min(n);
                let items: Vec<(TableInstance, EncodedInput)> = self.progress.order[start..end]
                    .iter()
                    .map(|&i| data[i as usize].clone())
                    .collect();
                let outcome = self.train_step(&items, cooccur);
                self.progress.batch_in_epoch += 1;
                match outcome {
                    StepOutcome::Stepped(loss) => {
                        self.progress.epoch_loss_sum += loss;
                        self.progress.epoch_batches += 1;
                        self.progress.steps += 1;
                        if let Some(p) = policy {
                            if p.every_steps > 0
                                && self.progress.steps.is_multiple_of(p.every_steps)
                            {
                                self.save_checkpoint(p)?;
                            }
                        }
                    }
                    StepOutcome::Empty => {}
                    StepOutcome::SkippedNonFinite => self.progress.non_finite_skips += 1,
                }
            }
            let mean = self.progress.epoch_loss_sum / self.progress.epoch_batches.max(1) as f32;
            self.progress.epoch_losses.push(mean);
            self.progress.epoch += 1;
            self.progress.order.clear();
            self.progress.batch_in_epoch = 0;
            self.progress.epoch_loss_sum = 0.0;
            self.progress.epoch_batches = 0;
            drop(epoch_span.field("mean_loss", f64::from(mean)));
            if obs_on {
                turl_obs::emit(
                    "epoch_end",
                    vec![
                        ("mean_loss", f64::from(mean).into()),
                        ("steps", self.progress.steps.into()),
                    ],
                );
                turl_obs::emit_metrics_events();
                turl_obs::emit_profile_events();
                turl_obs::flush();
            }
        }
        if let Some(p) = policy {
            self.save_checkpoint(p)?;
        }
        if obs_on {
            turl_obs::set_step(self.opt.steps());
            turl_obs::emit(
                "run_end",
                vec![
                    ("steps", self.progress.steps.into()),
                    ("epochs", self.progress.epoch.into()),
                    ("non_finite_skips", self.progress.non_finite_skips.into()),
                ],
            );
            turl_obs::flush();
        }
        Ok(self.stats())
    }

    /// Statistics over the whole run so far (including restored history).
    pub fn stats(&self) -> PretrainStats {
        PretrainStats {
            steps: self.progress.steps,
            epoch_losses: self.progress.epoch_losses.clone(),
            non_finite_skips: self.progress.non_finite_skips,
        }
    }

    /// Capture the complete trainer state: parameters, Adam moments and
    /// step counter, RNG, schedule, and training-loop progress.
    pub fn snapshot(&self) -> TrainerCheckpoint {
        TrainerCheckpoint {
            version: CHECKPOINT_VERSION,
            adam: self.opt.config,
            adam_steps: self.opt.steps(),
            rng: RngStateRepr::from_words(self.rng.state()),
            schedule: self.schedule,
            progress: self.progress.clone(),
            params: snapshot_params(&self.store),
        }
    }

    /// Restore a snapshot into this trainer. The checkpoint must match the
    /// live model parameter-for-parameter (name, shape, order); on any
    /// mismatch the trainer is left unchanged and a typed error returned.
    pub fn restore(&mut self, ckpt: &TrainerCheckpoint) -> Result<(), SerializeError> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(SerializeError::UnsupportedVersion {
                found: ckpt.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let rng_words = ckpt.rng.to_words()?;
        restore_params(&mut self.store, &ckpt.params)?;
        self.opt.config = ckpt.adam;
        self.opt.set_steps(ckpt.adam_steps);
        self.rng = StdRng::from_state(rng_words);
        if ckpt.schedule.is_some() {
            self.schedule = ckpt.schedule;
        }
        self.progress = ckpt.progress.clone();
        Ok(())
    }

    /// Atomically write `ckpt-<step>.json` under the policy directory and
    /// prune checkpoints beyond the retention window.
    pub fn save_checkpoint(&self, policy: &CheckpointPolicy) -> Result<(), SerializeError> {
        std::fs::create_dir_all(&policy.dir)?;
        let path = policy.dir.join(turl_nn::checkpoint_file_name(self.progress.steps));
        save_trainer_checkpoint(&self.snapshot(), &path)?;
        if policy.keep_last > 0 {
            prune_checkpoints(&policy.dir, policy.keep_last)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_data::{LinearizeConfig, Vocab};
    use turl_kb::{
        generate_corpus, identify_relational, CorpusConfig, KnowledgeBase, PipelineConfig,
        WorldConfig,
    };

    fn setup() -> (KnowledgeBase, Vocab, Vec<(TableInstance, EncodedInput)>, CooccurrenceIndex) {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(13));
        let tables = identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 40, ..CorpusConfig::tiny(14) }),
            &PipelineConfig::default(),
        );
        let texts: Vec<String> = tables
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let cfg = TurlConfig::tiny(1);
        let data: Vec<(TableInstance, EncodedInput)> = tables
            .iter()
            .map(|t| {
                let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
                let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
                (inst, enc)
            })
            .collect();
        let cooccur = CooccurrenceIndex::build(&tables);
        (kb, vocab, data, cooccur)
    }

    #[test]
    fn mask_plan_ratios_roughly_hold() {
        let (_, vocab, data, _) = setup();
        let cfg = TurlConfig::tiny(1);
        let mut rng = StdRng::seed_from_u64(5);
        let (mut sel_tok, mut tot_tok, mut sel_ent, mut tot_ent) = (0usize, 0usize, 0usize, 0usize);
        let mut masked_mentions = 0usize;
        let mut kept_mentions = 0usize;
        for (_, clean) in &data {
            let mut enc = clean.clone();
            let plan = apply_mask_plan(
                &mut rng,
                &mut enc,
                &cfg,
                vocab.mask_id() as usize,
                vocab.len(),
                100,
            );
            sel_tok += plan.mlm.len();
            tot_tok += enc.token_ids.len();
            sel_ent += plan.mer.len();
            tot_ent += enc.entities.len();
            for &(c, _) in &plan.mer {
                if enc.entities[c].emb_index == 0 {
                    if enc.entities[c].mention == vec![vocab.mask_id() as usize] {
                        masked_mentions += 1;
                    } else {
                        kept_mentions += 1;
                    }
                }
            }
        }
        let tok_ratio = sel_tok as f64 / tot_tok as f64;
        let ent_ratio = sel_ent as f64 / tot_ent as f64;
        assert!((tok_ratio - 0.2).abs() < 0.06, "MLM select ratio {tok_ratio}");
        assert!((ent_ratio - 0.6).abs() < 0.08, "MER select ratio {ent_ratio}");
        // among masked-entity cells, mention-kept cases exist (the 27% branch)
        assert!(kept_mentions > 0, "no mention-kept MER cases");
        assert!(masked_mentions > kept_mentions, "63% branch should dominate");
    }

    #[test]
    fn candidates_contain_table_entities_and_negatives() {
        let (_, _, data, cooccur) = setup();
        let cfg = TurlConfig::tiny(1);
        let mut rng = StdRng::seed_from_u64(3);
        let (inst, _) = &data[0];
        let cands = build_candidates(&mut rng, inst, &cooccur, &cfg, 300);
        for e in &inst.entities {
            assert!(cands.contains(&(e.entity as usize)));
        }
        assert!(cands.len() > inst.entities.len(), "no negatives added");
        let set: HashSet<_> = cands.iter().collect();
        assert_eq!(set.len(), cands.len(), "duplicate candidates");
    }

    #[test]
    fn schedule_decays_learning_rate_during_training() {
        let (kb, vocab, data, cooccur) = setup();
        let mut pt = Pretrainer::new(
            TurlConfig::tiny(9),
            vocab.len(),
            kb.n_entities(),
            vocab.mask_id() as usize,
        );
        let base_lr = pt.opt.config.lr;
        pt.set_schedule(turl_nn::LinearDecaySchedule::new(base_lr, 0, 40));
        pt.train(&data[..8], &cooccur, 4);
        assert!(pt.opt.config.lr < base_lr, "lr must have decayed");
        assert!(pt.opt.config.lr >= 0.0);
    }

    #[test]
    fn training_is_deterministic_across_thread_counts() {
        // Identical seeded runs at 1 and 4 worker threads must produce
        // bit-identical loss curves and final parameters: all randomness
        // is drawn serially in batch order and gradients are reduced in
        // batch order, so the pool width cannot influence the numerics.
        let (kb, vocab, data, cooccur) = setup();
        let run = |threads: usize| {
            let mut pt = Pretrainer::new(
                TurlConfig::tiny(4),
                vocab.len(),
                kb.n_entities(),
                vocab.mask_id() as usize,
            );
            pool::set_threads(threads);
            let stats = pt.train(&data[..10.min(data.len())], &cooccur, 3);
            (stats.epoch_losses, pt.store)
        };
        let saved = pool::n_threads();
        let (losses_1, store_1) = run(1);
        let (losses_4, store_4) = run(4);
        pool::set_threads(saved);
        assert_eq!(losses_1.len(), losses_4.len());
        for (e, (a, b)) in losses_1.iter().zip(losses_4.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "epoch {e} loss diverged: {a} vs {b}");
        }
        for id in store_1.ids() {
            let (v1, v4) = (store_1.value(id), store_4.value(id));
            assert_eq!(v1.shape(), v4.shape());
            for (i, (a, b)) in v1.data().iter().zip(v4.data().iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "param `{}` element {i} diverged: {a} vs {b}",
                    store_1.name(id)
                );
            }
        }
    }

    #[test]
    fn training_is_bit_identical_with_metrics_on_or_off() {
        // The determinism invariant behind `--metrics-out` (DESIGN §5d):
        // instrumentation only reads clocks and bumps counters, so a
        // seeded 2-epoch run with a structured sink installed must match
        // an uninstrumented run bit-for-bit in losses and parameters.
        let (kb, vocab, data, cooccur) = setup();
        let slice = &data[..10.min(data.len())];
        let run = |instrument: bool| {
            let sink = instrument.then(|| {
                let (sink, buf) = turl_obs::MemorySink::new();
                (turl_obs::install_sink(Box::new(sink)), buf)
            });
            let mut pt = Pretrainer::new(
                TurlConfig::tiny(4),
                vocab.len(),
                kb.n_entities(),
                vocab.mask_id() as usize,
            );
            let stats = pt.train_until(slice, &cooccur, 2, None).unwrap();
            let events = sink.map(|(token, buf)| {
                turl_obs::remove_sink(token);
                let events = buf.lock().unwrap().clone();
                events
            });
            (stats.epoch_losses, pt.store, events)
        };
        let (losses_off, store_off, _) = run(false);
        let (losses_on, store_on, events) = run(true);
        // the instrumented run actually recorded telemetry...
        let events = events.expect("instrumented run captured events");
        assert!(events.iter().any(|e| e.kind == "run_start"));
        assert!(events.iter().any(|e| e.kind == "step"));
        assert!(events.iter().any(|e| e.kind == "span"));
        let step = events.iter().find(|e| e.kind == "step").unwrap();
        for key in ["loss", "grad_norm", "mlm_selected", "mlm_candidates"] {
            assert!(step.field(key).is_some(), "step event missing `{key}`");
        }
        // ...without perturbing a single bit of the training results
        assert_eq!(losses_off.len(), losses_on.len());
        for (e, (a, b)) in losses_off.iter().zip(losses_on.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "epoch {e} loss diverged: {a} vs {b}");
        }
        for id in store_off.ids() {
            let (v0, v1) = (store_off.value(id), store_on.value(id));
            for (i, (a, b)) in v0.data().iter().zip(v1.data().iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "param `{}` element {i} diverged under instrumentation",
                    store_off.name(id)
                );
            }
        }
    }

    #[test]
    fn random_helpers_avoid_excluded_ids() {
        let mut rng = StdRng::seed_from_u64(7);
        // no non-special words -> no random word, for every tiny vocab size
        for n_words in 0..=4 {
            assert_eq!(random_word_id(&mut rng, n_words, 2), None);
        }
        // drawn ids are always in-bounds, non-special, and never [MASK]
        for _ in 0..2000 {
            if let Some(id) = random_word_id(&mut rng, 6, 4) {
                assert!((4..6).contains(&id) && id != 4, "bad word id {id}");
            }
            if let Some(id) = random_word_id(&mut rng, 100, 2) {
                assert!((4..100).contains(&id));
            }
        }
        // a single-entity catalog has no possible noise entity
        assert_eq!(random_entity_id(&mut rng, 1, 0), None);
        for _ in 0..2000 {
            if let Some(id) = random_entity_id(&mut rng, 5, 3) {
                assert!(id < 5 && id != 3, "drew the gold entity");
            }
        }
        // when only one alternative exists it is always found
        for gold in 0..2 {
            assert_eq!(random_entity_id(&mut rng, 2, gold), Some(1 - gold));
        }
    }

    #[test]
    fn tiny_vocab_mask_plan_stays_in_bounds() {
        // Regression: `gen_range(4..n_words.max(5))` used to emit id 4 for
        // vocabularies of size <= 4, indexing past the embedding table.
        let (_, _, data, _) = setup();
        let cfg = TurlConfig::tiny(1);
        // n_words = 4 (specials only) and 5 are exactly the sizes the old
        // `gen_range(4..n_words.max(5))` call went out of bounds on
        for n_words in [4usize, 5, 6] {
            let mut rng = StdRng::seed_from_u64(11);
            for (_, clean) in data.iter().take(10) {
                let mut enc = clean.clone();
                // clamp the clean ids so "keep unchanged" stays in range
                for t in enc.token_ids.iter_mut() {
                    *t = (*t).min(n_words - 1);
                }
                apply_mask_plan(&mut rng, &mut enc, &cfg, 2, n_words, 50);
                for (pos, &t) in enc.token_ids.iter().enumerate() {
                    assert!(t < n_words, "token {pos} got id {t} >= n_words {n_words}");
                }
            }
        }
    }

    #[test]
    fn empty_batches_are_not_counted() {
        let (kb, vocab, _, cooccur) = setup();
        let mut pt = Pretrainer::new(
            TurlConfig::tiny(3),
            vocab.len(),
            kb.n_entities(),
            vocab.mask_id() as usize,
        );
        let outcome = pt.train_step(&[], &cooccur);
        assert_eq!(outcome, StepOutcome::Empty);
        let stats = pt.train(&[], &cooccur, 2);
        // no batch ever stepped: counters stay at zero and in sync with Adam,
        // and the loss mean is not diluted by phantom steps
        assert_eq!(stats.steps, 0);
        assert_eq!(pt.opt.steps(), 0);
        assert_eq!(stats.epoch_losses, vec![0.0, 0.0]);
        assert_eq!(stats.non_finite_skips, 0);
    }

    #[test]
    fn step_counter_matches_optimizer_steps() {
        let (kb, vocab, data, cooccur) = setup();
        let mut pt = Pretrainer::new(
            TurlConfig::tiny(6),
            vocab.len(),
            kb.n_entities(),
            vocab.mask_id() as usize,
        );
        let stats = pt.train(&data[..8.min(data.len())], &cooccur, 2);
        assert_eq!(stats.steps, pt.opt.steps(), "stats.steps desynced from opt.steps()");
        assert!(stats.steps > 0);
    }

    #[test]
    fn resume_from_mid_run_checkpoint_is_bit_identical() {
        // Mirrors `training_is_deterministic_across_thread_counts`: run A
        // trains 3 epochs uninterrupted; run B trains the same seeded run
        // but checkpoints at every optimizer step; run C starts fresh,
        // restores a mid-run checkpoint file (crossing the full
        // save -> fsync -> load -> validate path), and finishes the run.
        // Losses and every parameter must match A bit-for-bit.
        let (kb, vocab, data, cooccur) = setup();
        let slice = &data[..10.min(data.len())];
        let fresh = || {
            Pretrainer::new(
                TurlConfig::tiny(4),
                vocab.len(),
                kb.n_entities(),
                vocab.mask_id() as usize,
            )
        };

        let mut a = fresh();
        let stats_a = a.train(slice, &cooccur, 3);

        let dir = std::env::temp_dir().join(format!("turl_resume_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let policy = CheckpointPolicy { dir: dir.clone(), every_steps: 1, keep_last: 0 };
        let mut b = fresh();
        b.train_until(slice, &cooccur, 3, Some(&policy)).unwrap();

        let mut ckpts = turl_nn::list_checkpoints(&dir).unwrap();
        assert!(ckpts.len() > 3, "expected per-step checkpoints, got {}", ckpts.len());
        // pick an arbitrary mid-run step (not the final one)
        let (step, mid_path) = ckpts.swap_remove(ckpts.len() / 2);
        assert!(step > 0);
        let ckpt = turl_nn::load_trainer_checkpoint(&mid_path).unwrap();
        let mut c = fresh();
        c.restore(&ckpt).unwrap();
        assert_eq!(c.opt.steps(), step);
        let stats_c = c.train_until(slice, &cooccur, 3, None).unwrap();

        assert_eq!(stats_a.epoch_losses.len(), stats_c.epoch_losses.len());
        for (e, (x, y)) in stats_a.epoch_losses.iter().zip(stats_c.epoch_losses.iter()).enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "epoch {e} loss diverged after resume: {x} vs {y}"
            );
        }
        assert_eq!(stats_a.steps, stats_c.steps);
        for id in a.store.ids() {
            let (va, vc) = (a.store.value(id), c.store.value(id));
            assert_eq!(va.shape(), vc.shape());
            for (i, (x, y)) in va.data().iter().zip(vc.data().iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "param `{}` element {i} diverged after resume: {x} vs {y}",
                    a.store.name(id)
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_falls_back_when_newest_checkpoint_is_truncated() {
        let (kb, vocab, data, cooccur) = setup();
        let slice = &data[..6.min(data.len())];
        let dir = std::env::temp_dir().join(format!("turl_fallback_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let policy = CheckpointPolicy { dir: dir.clone(), every_steps: 1, keep_last: 0 };
        let mut pt = Pretrainer::new(
            TurlConfig::tiny(8),
            vocab.len(),
            kb.n_entities(),
            vocab.mask_id() as usize,
        );
        pt.train_until(slice, &cooccur, 1, Some(&policy)).unwrap();
        let ckpts = turl_nn::list_checkpoints(&dir).unwrap();
        assert!(ckpts.len() >= 2);
        // crash mid-write: newest file is cut in half
        let (newest_step, newest) = ckpts.last().unwrap().clone();
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let rec = turl_nn::recover_latest(&dir).unwrap();
        let (path, ckpt) = rec.checkpoint.expect("must fall back to an older checkpoint");
        assert_ne!(path, newest);
        assert_eq!(rec.rejected.len(), 1);
        assert!(ckpt.progress.steps < newest_step);
        // and the fallback checkpoint restores cleanly
        let mut resumed = Pretrainer::new(
            TurlConfig::tiny(8),
            vocab.len(),
            kb.n_entities(),
            vocab.mask_id() as usize,
        );
        resumed.restore(&ckpt).unwrap();
        assert_eq!(resumed.opt.steps(), ckpt.adam_steps);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pretraining_reduces_loss() {
        let (kb, vocab, data, cooccur) = setup();
        let mut pt = Pretrainer::new(
            TurlConfig::tiny(2),
            vocab.len(),
            kb.n_entities(),
            vocab.mask_id() as usize,
        );
        let stats = pt.train(&data[..16.min(data.len())], &cooccur, 14);
        assert_eq!(stats.epoch_losses.len(), 14);
        // per-epoch losses are noisy (random re-masking); compare windows
        let first: f32 = stats.epoch_losses[..4].iter().sum::<f32>() / 4.0;
        let last: f32 =
            stats.epoch_losses[stats.epoch_losses.len() - 4..].iter().sum::<f32>() / 4.0;
        assert!(last < first, "pre-training loss did not drop: {first} -> {last}");
        assert!(last.is_finite());
    }
}
