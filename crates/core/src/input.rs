//! Model-ready encoded inputs.
//!
//! An [`EncodedInput`] is a linearized table after masking decisions have
//! been applied: integer ids for every embedding lookup plus the additive
//! visibility mask. Pre-training mutates a clean encoding according to a
//! [`crate::MaskPlan`]; fine-tuning tasks construct encodings directly
//! (possibly with appended `[MASK]` cells or stripped metadata).

use turl_data::{TableInstance, TokenScope, VisibilityMatrix, Vocab};
use turl_tensor::Tensor;

/// One entity cell, ready for the embedding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityInput {
    /// Row in the entity-embedding table: `0` is the entity `[MASK]`,
    /// entity `e` sits at `e + 1`.
    pub emb_index: usize,
    /// Word ids of the mention; a masked mention is `[mask_word_id]`.
    pub mention: Vec<usize>,
    /// Entity type: 0 topic, 1 subject, 2 object.
    pub type_idx: usize,
}

/// A fully encoded model input.
#[derive(Debug, Clone)]
pub struct EncodedInput {
    /// Metadata token ids.
    pub token_ids: Vec<usize>,
    /// Token type ids (0 caption, 1 header) — `t` in Eqn. 1.
    pub token_types: Vec<usize>,
    /// Token positions within their caption/header — `p` in Eqn. 1.
    pub token_pos: Vec<usize>,
    /// Entity cells.
    pub entities: Vec<EntityInput>,
    /// Additive visibility mask (`[n, n]`), or `None` for full visibility.
    pub mask: Option<Tensor>,
}

impl EncodedInput {
    /// Encode a linearized table with no masking applied.
    ///
    /// With `use_visibility = false` the Figure-7a ablation (full
    /// visibility) is produced.
    pub fn from_instance(inst: &TableInstance, vocab: &Vocab, use_visibility: bool) -> Self {
        let mask_word = vocab.mask_id() as usize;
        let token_ids = inst.tokens.iter().map(|t| t.token as usize).collect();
        let token_types = inst
            .tokens
            .iter()
            .map(|t| match t.scope {
                TokenScope::Caption => 0,
                TokenScope::Header(_) => 1,
            })
            .collect();
        let token_pos = inst.tokens.iter().map(|t| t.position).collect();
        let entities = inst
            .entities
            .iter()
            .map(|e| EntityInput {
                emb_index: e.entity as usize + 1,
                mention: if e.mention_tokens.is_empty() {
                    vec![mask_word]
                } else {
                    e.mention_tokens.iter().map(|&t| t as usize).collect()
                },
                type_idx: e.type_index(),
            })
            .collect();
        let mask = use_visibility.then(|| {
            let vm = VisibilityMatrix::build(inst);
            Tensor::from_vec(vec![vm.n(), vm.n()], vm.to_additive_mask(-1e9))
        });
        Self { token_ids, token_types, token_pos, entities, mask }
    }

    /// Total sequence length.
    pub fn seq_len(&self) -> usize {
        self.token_ids.len() + self.entities.len()
    }

    /// Sequence row of entity `i`.
    pub fn entity_row(&self, i: usize) -> usize {
        self.token_ids.len() + i
    }

    /// Mask the linked entity of cell `i` (keep or mask the mention too).
    pub fn mask_entity(&mut self, i: usize, mask_mention: bool, mask_word_id: usize) {
        self.entities[i].emb_index = 0;
        if mask_mention {
            self.entities[i].mention = vec![mask_word_id];
        }
    }

    /// Replace the linked entity of cell `i` with another entity (the MER
    /// random-noise branch).
    pub fn replace_entity(&mut self, i: usize, entity: usize) {
        self.entities[i].emb_index = entity + 1;
    }

    /// Pre-flight validation against a model's vocabulary sizes.
    ///
    /// Serving code calls this before touching [`crate::CompiledForward`]
    /// so adversarial requests (empty tables, ids ≥ vocab, ragged or
    /// non-finite masks) are rejected with a typed message *before* a
    /// plan is compiled for their shape — a garbage request must not
    /// pollute the bounded plan cache. `n_words` is the word-vocabulary
    /// size and `n_entities` the entity count (embedding rows are
    /// `n_entities + 1`; `emb_index` 0 is the `[MASK]` row).
    pub fn validate(&self, n_words: usize, n_entities: usize) -> Result<(), String> {
        let n = self.seq_len();
        if n == 0 {
            return Err("empty input: at least one token or entity cell is required".into());
        }
        if self.token_types.len() != self.token_ids.len()
            || self.token_pos.len() != self.token_ids.len()
        {
            return Err(format!(
                "ragged token columns: {} ids, {} types, {} positions",
                self.token_ids.len(),
                self.token_types.len(),
                self.token_pos.len()
            ));
        }
        if let Some(&bad) = self.token_ids.iter().find(|&&t| t >= n_words) {
            return Err(format!("token id {bad} out of range for vocab of {n_words}"));
        }
        if let Some(&bad) = self.token_types.iter().find(|&&t| t >= 2) {
            return Err(format!("token type {bad} out of range (0 caption, 1 header)"));
        }
        for (i, e) in self.entities.iter().enumerate() {
            if e.emb_index > n_entities {
                return Err(format!(
                    "entity cell {i}: embedding index {} out of range for {n_entities} entities",
                    e.emb_index
                ));
            }
            if e.type_idx >= 3 {
                return Err(format!(
                    "entity cell {i}: type {} out of range (0 topic, 1 subject, 2 object)",
                    e.type_idx
                ));
            }
            if e.mention.is_empty() {
                return Err(format!("entity cell {i}: empty mention (mask it instead)"));
            }
            if let Some(&bad) = e.mention.iter().find(|&&w| w >= n_words) {
                return Err(format!(
                    "entity cell {i}: mention word {bad} out of range for vocab of {n_words}"
                ));
            }
        }
        if let Some(m) = &self.mask {
            if m.shape() != [n, n] {
                return Err(format!("visibility mask shape {:?} != [{n}, {n}]", m.shape()));
            }
            if m.data().iter().any(|v| !v.is_finite()) {
                return Err("visibility mask contains non-finite values".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turl_data::{Cell, EntityRef, LinearizeConfig, Table};

    fn instance() -> (TableInstance, Vocab) {
        let t = Table {
            id: "t".into(),
            page_title: "Films".into(),
            section_title: String::new(),
            caption: "by director".into(),
            topic_entity: Some(EntityRef { id: 7, mention: "topic guy".into() }),
            headers: vec!["film".into(), "director".into()],
            subject_column: 0,
            rows: vec![vec![Cell::linked(1, "alpha"), Cell::linked(2, "beta gamma")]],
        };
        let vocab = Vocab::build(
            ["films by director film alpha beta gamma topic guy"].iter().map(|s| &**s),
            1,
        );
        (TableInstance::from_table(&t, &vocab, &LinearizeConfig::default()), vocab)
    }

    #[test]
    fn encoding_layout() {
        let (inst, vocab) = instance();
        let enc = EncodedInput::from_instance(&inst, &vocab, true);
        assert_eq!(enc.token_ids.len(), inst.tokens.len());
        assert_eq!(enc.entities.len(), 3); // topic + 2 cells
        assert_eq!(enc.seq_len(), inst.seq_len());
        assert_eq!(enc.entities[0].type_idx, 0);
        assert_eq!(enc.entities[1].type_idx, 1);
        assert_eq!(enc.entities[2].type_idx, 2);
        // entity ids are shifted by one for the [MASK] row
        assert_eq!(enc.entities[1].emb_index, 2);
        let m = enc.mask.as_ref().unwrap();
        assert_eq!(m.shape(), &[enc.seq_len(), enc.seq_len()]);
    }

    #[test]
    fn token_types_and_positions() {
        let (inst, vocab) = instance();
        let enc = EncodedInput::from_instance(&inst, &vocab, false);
        assert!(enc.mask.is_none());
        // caption tokens first with type 0, then headers with type 1
        assert_eq!(enc.token_types[0], 0);
        assert_eq!(*enc.token_types.last().unwrap(), 1);
        assert_eq!(enc.token_pos[0], 0);
        assert_eq!(enc.token_pos[1], 1);
        // header positions restart at 0
        let first_header = enc.token_types.iter().position(|&t| t == 1).unwrap();
        assert_eq!(enc.token_pos[first_header], 0);
    }

    #[test]
    fn entity_masking_mutations() {
        let (inst, vocab) = instance();
        let mut enc = EncodedInput::from_instance(&inst, &vocab, true);
        let mask_word = vocab.mask_id() as usize;
        enc.mask_entity(1, true, mask_word);
        assert_eq!(enc.entities[1].emb_index, 0);
        assert_eq!(enc.entities[1].mention, vec![mask_word]);
        enc.mask_entity(2, false, mask_word);
        assert_eq!(enc.entities[2].emb_index, 0);
        assert_ne!(enc.entities[2].mention, vec![mask_word], "mention kept");
        enc.replace_entity(2, 5);
        assert_eq!(enc.entities[2].emb_index, 6);
    }

    #[test]
    fn multiword_mentions_encoded() {
        let (inst, vocab) = instance();
        let enc = EncodedInput::from_instance(&inst, &vocab, true);
        assert_eq!(enc.entities[2].mention.len(), 2); // "beta gamma"
    }
}
