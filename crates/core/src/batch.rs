//! Cross-request micro-batching: coalesce several encoded tables into
//! one batched forward that is **bit-exact** with running each table
//! alone.
//!
//! Batching here is not a new execution mode — it is a §4.3 visibility
//! mask. [`TableBatch::build`] concatenates the member inputs (all
//! tokens first, then all entity cells, preserving per-table order) and
//! builds a block-structured additive mask: within a table the original
//! mask entries are copied verbatim, across tables everything is
//! `-1e9`-masked. The fused softmax then assigns cross-table positions
//! an attention weight of exactly `+0.0` (`exp(-1e9 - mx)` underflows),
//! and the reassociation-free single-accumulator kernels guarantee that
//! adding those exact zeros never perturbs a running sum — so every row
//! of the batched encode carries the same bits as the corresponding row
//! of a solo encode. The `batched_parity` tests assert this down to
//! `f32::to_bits`.
//!
//! Only inputs that carry a visibility mask can batch (an unmasked
//! input has nothing to keep its neighbors invisible); callers fall
//! back to single-table forwards otherwise.

use crate::input::EncodedInput;
use turl_exec::ExecError;
use turl_tensor::Tensor;

/// Row extents of one member table inside the concatenated input.
#[derive(Debug, Clone, Copy)]
struct Span {
    tok_off: usize,
    tok_len: usize,
    ent_off: usize,
    ent_len: usize,
}

/// Several encoded tables coalesced into one forward-sized input.
pub struct TableBatch {
    input: EncodedInput,
    spans: Vec<Span>,
    total_tokens: usize,
}

impl TableBatch {
    /// Coalesce `inputs` into one batched input. Every member must be
    /// non-empty and carry a visibility mask; otherwise a typed
    /// [`ExecError::Binding`] is returned and the caller should run the
    /// members individually.
    pub fn build(inputs: &[&EncodedInput]) -> Result<Self, ExecError> {
        if inputs.is_empty() {
            return Err(ExecError::Binding("cannot batch zero inputs".into()));
        }
        let mut spans = Vec::with_capacity(inputs.len());
        let mut total_tokens = 0usize;
        let mut total_entities = 0usize;
        for (i, inp) in inputs.iter().enumerate() {
            if inp.seq_len() == 0 {
                return Err(ExecError::Binding(format!("batch member {i} is empty")));
            }
            let mask = inp
                .mask
                .as_ref()
                .ok_or_else(|| ExecError::Binding(format!("batch member {i} has no mask")))?;
            let n = inp.seq_len();
            if mask.shape() != [n, n] {
                return Err(ExecError::Binding(format!(
                    "batch member {i}: mask shape {:?} != [{n}, {n}]",
                    mask.shape()
                )));
            }
            spans.push(Span {
                tok_off: total_tokens,
                tok_len: inp.token_ids.len(),
                ent_off: total_entities,
                ent_len: inp.entities.len(),
            });
            total_tokens += inp.token_ids.len();
            total_entities += inp.entities.len();
        }

        let mut token_ids = Vec::with_capacity(total_tokens);
        let mut token_types = Vec::with_capacity(total_tokens);
        let mut token_pos = Vec::with_capacity(total_tokens);
        let mut entities = Vec::with_capacity(total_entities);
        for inp in inputs {
            token_ids.extend_from_slice(&inp.token_ids);
            token_types.extend_from_slice(&inp.token_types);
            token_pos.extend_from_slice(&inp.token_pos);
            entities.extend(inp.entities.iter().cloned());
        }

        // Block-structured additive mask: everything cross-table starts
        // masked; each member's own mask entries are copied bit-for-bit
        // into its block so within-table visibility is unchanged.
        let n = total_tokens + total_entities;
        let mut mask = vec![-1e9f32; n * n];
        for (span, inp) in spans.iter().zip(inputs.iter()) {
            let local = inp.mask.as_ref().expect("checked above").data();
            let ln = inp.seq_len();
            let global = |r: usize| {
                if r < span.tok_len {
                    span.tok_off + r
                } else {
                    total_tokens + span.ent_off + (r - span.tok_len)
                }
            };
            for r in 0..ln {
                let gr = global(r);
                for c in 0..ln {
                    mask[gr * n + global(c)] = local[r * ln + c];
                }
            }
        }

        Ok(Self {
            input: EncodedInput {
                token_ids,
                token_types,
                token_pos,
                entities,
                mask: Some(Tensor::from_vec(vec![n, n], mask)),
            },
            spans,
            total_tokens,
        })
    }

    /// The concatenated input to feed one compiled forward.
    pub fn input(&self) -> &EncodedInput {
        &self.input
    }

    /// Number of member tables.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the batch holds no members (never, post-`build`).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Map member `item`'s local sequence row to its row in the batched
    /// encode.
    pub fn global_row(&self, item: usize, local_row: usize) -> usize {
        let s = self.spans[item];
        debug_assert!(local_row < s.tok_len + s.ent_len);
        if local_row < s.tok_len {
            s.tok_off + local_row
        } else {
            self.total_tokens + s.ent_off + (local_row - s.tok_len)
        }
    }

    /// Copy member `item`'s rows out of the batched encode `h`, in the
    /// member's original row order — bit-identical to a solo encode of
    /// that member.
    pub fn extract(&self, item: usize, h: &Tensor) -> Tensor {
        let s = self.spans[item];
        let rows: Vec<usize> =
            (0..s.tok_len + s.ent_len).map(|r| self.global_row(item, r)).collect();
        h.index_select0(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::model::TurlModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use turl_nn::ParamStore;

    fn masked_input(tokens: usize, ents: usize, seed: u64) -> EncodedInput {
        // §4.3-shaped visibility: diagonal always visible, off-diagonal
        // pseudo-randomly masked, like real table masks.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = tokens + ents;
        let mut m = Tensor::zeros(vec![n, n]);
        for r in 0..n {
            for c in 0..n {
                if r != c && rng.gen::<f32>() < 0.3 {
                    m.data_mut()[r * n + c] = -1e9;
                }
            }
        }
        EncodedInput {
            token_ids: (0..tokens).map(|i| (i * 7 + seed as usize) % 50).collect(),
            token_types: (0..tokens).map(|i| i % 2).collect(),
            token_pos: (0..tokens).collect(),
            entities: (0..ents)
                .map(|i| crate::input::EntityInput {
                    emb_index: (i * 3 + seed as usize) % 21,
                    mention: vec![(i * 5) % 50; (i % 3) + 1],
                    type_idx: i % 3,
                })
                .collect(),
            mask: Some(m),
        }
    }

    #[test]
    fn batched_encode_is_bit_exact_vs_solo() {
        let cfg = TurlConfig::small(12);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
        let mut cf = model.compiled();

        // Same-shape members (the serve coalescing rule) and, separately,
        // mixed shapes: the mask argument covers both.
        let groups: [Vec<EncodedInput>; 2] = [
            (0..4).map(|i| masked_input(6, 3, 100 + i)).collect(),
            vec![masked_input(5, 2, 7), masked_input(8, 4, 8), masked_input(3, 1, 9)],
        ];
        for inputs in &groups {
            let refs: Vec<&EncodedInput> = inputs.iter().collect();
            let batch = TableBatch::build(&refs).expect("batch builds");
            let hb = cf.encode(&model, &store, batch.input()).expect("batched encode");
            for (i, inp) in inputs.iter().enumerate() {
                let solo = cf.encode(&model, &store, inp).expect("solo encode");
                let part = batch.extract(i, &hb);
                assert_eq!(part.shape(), solo.shape());
                for (a, b) in part.data().iter().zip(solo.data().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "batched encode diverged (member {i})");
                }
            }
        }
    }

    #[test]
    fn batched_mer_head_matches_solo() {
        let cfg = TurlConfig::small(13);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
        let mut cf = model.compiled();
        let inputs: Vec<EncodedInput> = (0..3).map(|i| masked_input(6, 3, 40 + i)).collect();
        let refs: Vec<&EncodedInput> = inputs.iter().collect();
        let batch = TableBatch::build(&refs).expect("batch builds");
        let hb = cf.encode(&model, &store, batch.input()).expect("batched encode");
        let candidates = [0usize, 3, 7, 19];
        for (i, inp) in inputs.iter().enumerate() {
            let solo_h = cf.encode(&model, &store, inp).expect("solo encode");
            let want = cf
                .mer_logits(&model, &store, &solo_h, &[inp.entity_row(1)], &candidates)
                .expect("solo mer");
            let grow = batch.global_row(i, inp.entity_row(1));
            let got =
                cf.mer_logits(&model, &store, &hb, &[grow], &candidates).expect("batched mer");
            for (a, b) in got.data().iter().zip(want.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched MER diverged (member {i})");
            }
        }
    }

    #[test]
    fn unmasked_members_are_rejected() {
        let mut a = masked_input(4, 2, 1);
        a.mask = None;
        assert!(TableBatch::build(&[&a]).is_err());
        assert!(TableBatch::build(&[]).is_err());
    }
}
