//! Relation extraction (§6.4): multi-label classification of subject–
//! object column pairs with the Eqn. 12 head.

use super::{column_repr, encode_table_with_channels, multi_hot, predict_labels, InputChannels};
use crate::finetune::{train_batched, FinetuneConfig, FinetuneStats};
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{Table, Vocab};
use turl_kb::tasks::metrics::{average_precision, mean_average_precision, PrfAccumulator};
use turl_kb::tasks::RelationExample;
use turl_nn::{Forward, Linear, ParamStore};

/// TURL fine-tuned for relation extraction.
pub struct RelationModel {
    /// The (pre-trained) encoder.
    pub model: TurlModel,
    /// All parameters, including the task head.
    pub store: ParamStore,
    head: Linear,
    channels: InputChannels,
    n_labels: usize,
}

impl RelationModel {
    /// Wrap a pre-trained model with a fresh `4d → n_labels` head
    /// (`[h_c; h_c']` of Eqn. 12).
    pub fn new(
        model: TurlModel,
        mut store: ParamStore,
        n_labels: usize,
        channels: InputChannels,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0xBE1);
        let d = model.d_model();
        let head = Linear::new(&mut store, &mut rng, "re.head", 4 * d, n_labels, true);
        Self { model, store, head, channels, n_labels }
    }

    fn logits(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        rng: &mut StdRng,
        tables: &[Table],
        vocab: &Vocab,
        ex: &RelationExample,
    ) -> turl_tensor::Var {
        let (inst, enc) = encode_table_with_channels(
            &tables[ex.table_idx],
            vocab,
            &self.model.cfg.linearize,
            self.model.cfg.use_visibility,
            self.channels,
        );
        let h = self.model.encode(f, store, rng, &enc);
        let d = self.model.d_model();
        let hc = column_repr(f, h, &inst, ex.subj_col, d);
        let hc2 = column_repr(f, h, &inst, ex.obj_col, d);
        let cat = f.graph.concat_cols(&[hc, hc2]);
        self.head.forward(f, store, cat)
    }

    /// Fine-tune with binary cross-entropy.
    pub fn train(
        &mut self,
        tables: &[Table],
        vocab: &Vocab,
        examples: &[RelationExample],
        cfg: &FinetuneConfig,
    ) -> FinetuneStats {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBE2);
        let mut store = std::mem::take(&mut self.store);
        let stats = train_batched(cfg, &mut store, examples.len(), |i, store| {
            let ex = &examples[i];
            let mut f = Forward::new(store);
            let logits = self.logits(&mut f, store, &mut rng, tables, vocab, ex);
            let targets = multi_hot(&ex.labels, self.n_labels);
            let loss = f.graph.bce_with_logits(logits, targets);
            let out = f.graph.value(loss).item();
            f.backprop(loss, store);
            out
        });
        self.store = store;
        stats
    }

    /// Raw logits for one example (used by MAP evaluation).
    pub fn score(&self, tables: &[Table], vocab: &Vocab, ex: &RelationExample) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut f = Forward::inference(&self.store);
        let logits = self.logits(&mut f, &self.store, &mut rng, tables, vocab, ex);
        f.graph.value(logits).data().to_vec()
    }

    /// Micro P/R/F1 over a split.
    pub fn evaluate(
        &self,
        tables: &[Table],
        vocab: &Vocab,
        examples: &[RelationExample],
    ) -> PrfAccumulator {
        let mut acc = PrfAccumulator::new();
        for ex in examples {
            let scores = self.score(tables, vocab, ex);
            let t = turl_tensor::Tensor::from_vec(vec![1, scores.len()], scores);
            acc.add_sets(&predict_labels(&t), &ex.labels);
        }
        acc
    }

    /// Mean average precision over a split (the Figure 6 convergence
    /// metric).
    pub fn map(&self, tables: &[Table], vocab: &Vocab, examples: &[RelationExample]) -> f64 {
        let aps: Vec<f64> = examples
            .iter()
            .map(|ex| {
                let scores = self.score(tables, vocab, ex);
                let mut order: Vec<usize> = (0..scores.len()).collect();
                order.sort_by(|&a, &b| {
                    scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b))
                });
                average_precision(&order, &ex.labels)
            })
            .collect();
        mean_average_precision(&aps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use crate::tasks::clone_pretrained;
    use turl_kb::tasks::build_relation_task;
    use turl_kb::{
        generate_corpus, identify_relational, partition, CorpusConfig, KnowledgeBase,
        PipelineConfig, WorldConfig,
    };

    #[test]
    fn relation_finetune_learns() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(33));
        let pcfg = PipelineConfig { max_eval_tables: 20, ..Default::default() };
        let splits = partition(
            identify_relational(
                generate_corpus(&kb, &CorpusConfig { n_tables: 80, ..CorpusConfig::tiny(34) }),
                &pcfg,
            ),
            &pcfg,
        );
        let texts: Vec<String> = splits
            .train
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let task = build_relation_task(&kb, &splits.train, &splits.validation, &splits.test, 3, 2);
        assert!(!task.train.is_empty());
        let eval_split = if task.test.is_empty() { &task.validation } else { &task.test };
        let eval_tables = if task.test.is_empty() { &splits.validation } else { &splits.test };
        assert!(!eval_split.is_empty());

        let cfg = TurlConfig::tiny(6);
        let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let (model, store) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
        let mut re =
            RelationModel::new(model, store, task.label_relations.len(), InputChannels::full());
        let n = task.train.len().min(40);
        let stats = re.train(
            &splits.train,
            &vocab,
            &task.train[..n],
            &FinetuneConfig { epochs: 6, ..Default::default() },
        );
        assert!(stats.final_loss() < stats.epoch_losses[0]);
        let map = re.map(eval_tables, &vocab, eval_split);
        assert!(map > 0.3, "MAP too low: {map}");
    }
}
