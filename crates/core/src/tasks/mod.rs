//! Fine-tuning heads and evaluation for the six TUBE tasks (§6).
//!
//! Each task module provides a model struct wrapping the pre-trained
//! [`TurlModel`], a `train` entry point (where the paper fine-tunes) and an
//! `evaluate` entry point producing the paper's metric.

pub mod cell_filling;
pub mod column_type;
pub mod entity_linking;
pub mod relation_extraction;
pub mod row_population;
pub mod schema_augmentation;

use crate::config::TurlConfig;
use crate::input::EncodedInput;
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{LinearizeConfig, Table, TableInstance, Vocab};
use turl_nn::{Forward, ParamStore};
use turl_tensor::{Tensor, Var};

/// Which input channels a task model consumes — the knobs behind the
/// paper's ablation rows ("w/o table metadata", "w/o learned embedding",
/// "only entity mention", ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputChannels {
    /// Include caption/header tokens.
    pub metadata: bool,
    /// Include entity cells at all.
    pub cells: bool,
    /// Feed the pre-trained entity embedding `e^e` of each cell.
    pub cell_embedding: bool,
    /// Feed the mention text `e^m` of each cell.
    pub cell_mention: bool,
}

impl InputChannels {
    /// Everything on (the headline TURL configuration).
    pub fn full() -> Self {
        Self { metadata: true, cells: true, cell_embedding: true, cell_mention: true }
    }

    /// "only entity mention": cell text only, no metadata, no embeddings.
    pub fn only_mention() -> Self {
        Self { metadata: false, cells: true, cell_embedding: false, cell_mention: true }
    }

    /// "w/o table metadata".
    pub fn without_metadata() -> Self {
        Self { metadata: false, ..Self::full() }
    }

    /// "w/o learned embedding".
    pub fn without_embedding() -> Self {
        Self { cell_embedding: false, ..Self::full() }
    }

    /// "only table metadata".
    pub fn only_metadata() -> Self {
        Self { metadata: true, cells: false, cell_embedding: false, cell_mention: false }
    }

    /// "only learned embedding".
    pub fn only_embedding() -> Self {
        Self { metadata: false, cells: true, cell_embedding: true, cell_mention: false }
    }
}

/// Clone a pre-trained model into a fresh (model, store) pair so each
/// fine-tuning variant starts from identical weights.
pub fn clone_pretrained(
    cfg: TurlConfig,
    n_words: usize,
    n_entities: usize,
    pretrained: &ParamStore,
) -> (TurlModel, ParamStore) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = TurlModel::new(&mut store, &mut rng, cfg, n_words, n_entities);
    let copied = store.load_matching(pretrained);
    debug_assert!(copied > 0, "no parameters copied from pre-trained store");
    (model, store)
}

/// Linearize a table and apply the [`InputChannels`] filters, producing a
/// model-ready encoding.
pub fn encode_table_with_channels(
    table: &Table,
    vocab: &Vocab,
    lin: &LinearizeConfig,
    use_visibility: bool,
    channels: InputChannels,
) -> (TableInstance, EncodedInput) {
    let mut inst = TableInstance::from_table(table, vocab, lin);
    if !channels.metadata {
        inst.tokens.clear();
    }
    if !channels.cells {
        inst.entities.clear();
    }
    let mut enc = EncodedInput::from_instance(&inst, vocab, use_visibility);
    let mask_word = vocab.mask_id() as usize;
    for i in 0..enc.entities.len() {
        if !channels.cell_embedding {
            enc.entities[i].emb_index = 0;
        }
        if !channels.cell_mention {
            enc.entities[i].mention = vec![mask_word];
        }
    }
    (inst, enc)
}

/// Aggregated column representation `h_c` (Eqn. 9): mean header-token
/// representation concatenated with mean entity-cell representation, shape
/// `[1, 2 d]`. Missing channels contribute zero vectors.
pub fn column_repr(f: &mut Forward, h: Var, inst: &TableInstance, col: usize, d: usize) -> Var {
    let header_rows = inst.header_tokens_of(col);
    let ent_rows: Vec<usize> =
        inst.entities_in_column(col).iter().map(|&i| inst.entity_seq_index(i)).collect();
    let header_part = if header_rows.is_empty() {
        f.graph.constant(Tensor::zeros(vec![d]))
    } else {
        let sel = f.graph.index_select0(h, &header_rows);
        f.graph.mean_rows(sel)
    };
    let ent_part = if ent_rows.is_empty() {
        f.graph.constant(Tensor::zeros(vec![d]))
    } else {
        let sel = f.graph.index_select0(h, &ent_rows);
        f.graph.mean_rows(sel)
    };
    let hh = f.graph.reshape(header_part, vec![1, d]);
    let he = f.graph.reshape(ent_part, vec![1, d]);
    f.graph.concat_cols(&[hh, he])
}

/// Multi-label 0/1 target row for `n_labels` classes.
pub fn multi_hot(labels: &[usize], n_labels: usize) -> Tensor {
    let mut t = Tensor::zeros(vec![1, n_labels]);
    for &l in labels {
        t.data_mut()[l] = 1.0;
    }
    t
}

/// Predict the label set from a `[1, n]` logit row (sigmoid > 0.5 ⇔
/// logit > 0), falling back to the argmax so every example predicts at
/// least one label (each column/pair has at least one gold type).
pub fn predict_labels(logits: &Tensor) -> Vec<usize> {
    let mut out: Vec<usize> = (0..logits.len()).filter(|&i| logits.data()[i] > 0.0).collect();
    if out.is_empty() {
        out.push(logits.argmax());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_hot_sets_bits() {
        let t = multi_hot(&[0, 2], 4);
        assert_eq!(t.data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn predict_labels_threshold_and_fallback() {
        let t = Tensor::from_vec(vec![1, 3], vec![-1.0, 2.0, 0.5]);
        assert_eq!(predict_labels(&t), vec![1, 2]);
        let none = Tensor::from_vec(vec![1, 3], vec![-3.0, -1.0, -2.0]);
        assert_eq!(predict_labels(&none), vec![1]);
    }

    #[test]
    fn encode_with_channels_filters_inputs() {
        use turl_data::{Cell, EntityRef};
        let table = turl_data::Table {
            id: "t".into(),
            page_title: "Films".into(),
            section_title: String::new(),
            caption: "by director".into(),
            topic_entity: Some(EntityRef { id: 5, mention: "topic".into() }),
            headers: vec!["film".into(), "director".into()],
            subject_column: 0,
            rows: vec![vec![Cell::linked(1, "alpha"), Cell::linked(2, "beta")]],
        };
        let vocab = turl_data::Vocab::build(
            ["films by director film alpha beta topic"].iter().map(|s| &**s),
            1,
        );
        let lin = turl_data::LinearizeConfig::default();

        let (_, full) =
            encode_table_with_channels(&table, &vocab, &lin, true, InputChannels::full());
        assert!(!full.token_ids.is_empty());
        assert_eq!(full.entities.len(), 3);
        assert!(full.entities.iter().all(|e| e.emb_index > 0));

        let (_, only_meta) =
            encode_table_with_channels(&table, &vocab, &lin, true, InputChannels::only_metadata());
        assert!(only_meta.entities.is_empty());
        assert!(!only_meta.token_ids.is_empty());

        let (_, no_meta) = encode_table_with_channels(
            &table,
            &vocab,
            &lin,
            true,
            InputChannels::without_metadata(),
        );
        assert!(no_meta.token_ids.is_empty());
        assert_eq!(no_meta.entities.len(), 3);

        let (_, no_emb) = encode_table_with_channels(
            &table,
            &vocab,
            &lin,
            true,
            InputChannels::without_embedding(),
        );
        assert!(no_emb.entities.iter().all(|e| e.emb_index == 0), "embeddings masked");
        assert!(no_emb.entities.iter().any(|e| e.mention != vec![vocab.mask_id() as usize]));

        let (_, only_emb) =
            encode_table_with_channels(&table, &vocab, &lin, true, InputChannels::only_embedding());
        assert!(only_emb.entities.iter().all(|e| e.mention == vec![vocab.mask_id() as usize]));
        assert!(only_emb.entities.iter().all(|e| e.emb_index > 0));

        // the visibility mask matches the (possibly reduced) sequence
        for enc in [&full, &only_meta, &no_meta] {
            if let Some(m) = &enc.mask {
                assert_eq!(m.shape(), &[enc.seq_len(), enc.seq_len()]);
            }
        }
    }

    #[test]
    fn column_repr_has_2d_width() {
        use turl_data::{Cell, EntityRef};
        use turl_nn::{Forward, ParamStore};
        let table = turl_data::Table {
            id: "t".into(),
            page_title: String::new(),
            section_title: String::new(),
            caption: "c".into(),
            topic_entity: Some(EntityRef { id: 5, mention: "topic".into() }),
            headers: vec!["a".into(), "b".into()],
            subject_column: 0,
            rows: vec![vec![Cell::linked(1, "x"), Cell::linked(2, "y")]],
        };
        let vocab = turl_data::Vocab::build(["c a b x y topic"].iter().map(|s| &**s), 1);
        let inst = turl_data::TableInstance::from_table(
            &table,
            &vocab,
            &turl_data::LinearizeConfig::default(),
        );
        let store = ParamStore::new();
        let mut f = Forward::inference(&store);
        let h = f.graph.constant(turl_tensor::Tensor::ones(vec![inst.seq_len(), 6]));
        let hc = column_repr(&mut f, h, &inst, 1, 6);
        assert_eq!(f.graph.value(hc).shape(), &[1, 12]);
        // a column with no header tokens / no entities still yields zeros
        let hc9 = column_repr(&mut f, h, &inst, 9, 6);
        assert_eq!(f.graph.value(hc9).shape(), &[1, 12]);
        assert!(f.graph.value(hc9).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn channel_presets_match_paper_rows() {
        assert!(InputChannels::full().metadata);
        assert!(!InputChannels::only_mention().metadata);
        assert!(!InputChannels::only_mention().cell_embedding);
        assert!(InputChannels::only_mention().cell_mention);
        assert!(!InputChannels::only_metadata().cells);
        assert!(!InputChannels::only_embedding().cell_mention);
        assert!(InputChannels::without_embedding().metadata);
    }
}
