//! Entity linking (§6.2): disambiguate cell mentions against candidate
//! entities represented by their KB name, description and types (Eqn. 8).

use crate::finetune::{train_batched, FinetuneConfig, FinetuneStats};
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use turl_data::{EntityPosition, Table, TableInstance, Vocab};
use turl_kb::tasks::metrics::PrfAccumulator;
use turl_kb::tasks::ElMention;
use turl_kb::KnowledgeBase;
use turl_nn::{Embedding, Forward, Linear, ParamStore};
use turl_tensor::{Tensor, Var};

/// Pre-tokenized candidate metadata from the target KB: names,
/// descriptions (both word ids) and type ids per entity.
#[derive(Debug, Clone)]
pub struct CandidateCatalog {
    /// Word ids of each entity's name.
    pub name_tokens: Vec<Vec<usize>>,
    /// Word ids of each entity's description.
    pub desc_tokens: Vec<Vec<usize>>,
    /// Type ids of each entity.
    pub type_ids: Vec<Vec<usize>>,
    /// Size of the type space.
    pub n_types: usize,
}

impl CandidateCatalog {
    /// Build from the knowledge base using the model vocabulary.
    pub fn build(kb: &KnowledgeBase, vocab: &Vocab) -> Self {
        let name_tokens = kb
            .entities
            .iter()
            .map(|e| vocab.encode(&e.name).into_iter().map(|t| t as usize).collect())
            .collect();
        let desc_tokens = kb
            .entities
            .iter()
            .map(|e| vocab.encode(&e.description).into_iter().map(|t| t as usize).collect())
            .collect();
        let type_ids = kb.entities.iter().map(|e| e.types.clone()).collect();
        Self { name_tokens, desc_tokens, type_ids, n_types: kb.schema.types.len() }
    }
}

/// TURL fine-tuned for entity linking.
pub struct EntityLinkingModel {
    /// The (pre-trained) encoder.
    pub model: TurlModel,
    /// All parameters including the head.
    pub store: ParamStore,
    proj: Linear,
    type_emb: Embedding,
    /// Use candidate descriptions (Table 4 ablation: "w/o entity
    /// description").
    pub use_description: bool,
    /// Use candidate types (Table 4 ablation: "w/o entity type").
    pub use_type: bool,
}

/// A mention with its position resolved inside the linearized table.
struct ResolvedMention<'a> {
    mention: &'a ElMention,
    entity_index: usize,
}

impl EntityLinkingModel {
    /// Wrap a pre-trained model with the Eqn. 8 head: a `d → 3d`
    /// projection plus learned type embeddings.
    pub fn new(
        model: TurlModel,
        mut store: ParamStore,
        n_types: usize,
        use_description: bool,
        use_type: bool,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0xE1);
        let d = model.d_model();
        let proj = Linear::new(&mut store, &mut rng, "el.proj", d, 3 * d, true);
        let type_emb = Embedding::new(&mut store, &mut rng, "el.type_emb", n_types, d);
        Self { model, store, proj, type_emb, use_description, use_type }
    }

    /// Eqn. 8 candidate representations `[C, 3d]`.
    fn candidate_reprs(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        catalog: &CandidateCatalog,
        candidates: &[u32],
        d: usize,
    ) -> Var {
        let names: Vec<Vec<usize>> =
            candidates.iter().map(|&c| catalog.name_tokens[c as usize].clone()).collect();
        let descs: Vec<Vec<usize>> = candidates
            .iter()
            .map(|&c| {
                if self.use_description {
                    catalog.desc_tokens[c as usize].clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let types: Vec<Vec<usize>> = candidates
            .iter()
            .map(|&c| if self.use_type { catalog.type_ids[c as usize].clone() } else { Vec::new() })
            .collect();
        let name_part = mean_embedding_rows(f, store, &self.model.word_emb, &names, d);
        let desc_part = mean_embedding_rows(f, store, &self.model.word_emb, &descs, d);
        let type_part = mean_embedding_rows(f, store, &self.type_emb, &types, d);
        f.graph.concat_cols(&[name_part, desc_part, type_part])
    }

    /// Encode a table for entity linking: metadata plus all linked cells
    /// as mention-only entities (no pre-trained entity embeddings; §6.2).
    fn encode_for_linking(
        &self,
        table: &Table,
        vocab: &Vocab,
    ) -> (TableInstance, crate::input::EncodedInput) {
        let inst = TableInstance::from_table(table, vocab, &self.model.cfg.linearize);
        let mut enc =
            crate::input::EncodedInput::from_instance(&inst, vocab, self.model.cfg.use_visibility);
        for e in &mut enc.entities {
            e.emb_index = 0;
        }
        (inst, enc)
    }

    fn resolve<'a>(inst: &TableInstance, mentions: &[&'a ElMention]) -> Vec<ResolvedMention<'a>> {
        mentions
            .iter()
            .filter_map(|m| {
                let entity_index = inst
                    .entities
                    .iter()
                    .position(|e| e.position == EntityPosition::Cell { row: m.row, col: m.col })?;
                Some(ResolvedMention { mention: m, entity_index })
            })
            .collect()
    }

    /// Fine-tune with per-mention cross-entropy over candidates.
    pub fn train(
        &mut self,
        tables: &[Table],
        vocab: &Vocab,
        catalog: &CandidateCatalog,
        mentions: &[ElMention],
        cfg: &FinetuneConfig,
    ) -> FinetuneStats {
        // group mentions by table so each table is encoded once per step
        let mut groups: HashMap<usize, Vec<&ElMention>> = HashMap::new();
        for m in mentions {
            if m.candidates.len() > 1 {
                groups.entry(m.table_idx).or_default().push(m);
            }
        }
        let groups: Vec<(usize, Vec<&ElMention>)> = {
            let mut g: Vec<_> = groups.into_iter().collect();
            g.sort_by_key(|(t, _)| *t);
            g
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE2);
        let d = self.model.d_model();
        let mut store = std::mem::take(&mut self.store);
        let stats = train_batched(cfg, &mut store, groups.len(), |i, store| {
            let (table_idx, ms) = &groups[i];
            let (inst, enc) = self.encode_for_linking(&tables[*table_idx], vocab);
            let resolved = Self::resolve(&inst, ms);
            if resolved.is_empty() {
                return 0.0;
            }
            let mut f = Forward::new(store);
            let h = self.model.encode(&mut f, store, &mut rng, &enc);
            let mut total = 0.0f32;
            let mut losses = Vec::new();
            for r in &resolved {
                let row = inst.entity_seq_index(r.entity_index);
                let sel = f.graph.index_select0(h, &[row]);
                let q = self.proj.forward(&mut f, store, sel);
                let cand = self.candidate_reprs(&mut f, store, catalog, &r.mention.candidates, d);
                let logits = f.graph.matmul_nt(q, cand);
                let gold = r
                    .mention
                    .candidates
                    .iter()
                    .position(|&c| c == r.mention.gold)
                    .expect("training mentions include gold");
                losses.push(f.graph.cross_entropy(logits, &[gold]));
            }
            let mut loss = losses[0];
            for &l in &losses[1..] {
                loss = f.graph.add(loss, l);
            }
            let n = losses.len() as f32;
            let loss = f.graph.scale(loss, 1.0 / n);
            total += f.graph.value(loss).item();
            f.backprop(loss, store);
            total
        });
        self.store = store;
        stats
    }

    /// Predict an entity for every mention (None when no candidates).
    pub fn predict(
        &self,
        tables: &[Table],
        vocab: &Vocab,
        catalog: &CandidateCatalog,
        mentions: &[ElMention],
    ) -> Vec<Option<u32>> {
        let mut rng = StdRng::seed_from_u64(0);
        let d = self.model.d_model();
        // group by table for one encode per table
        let mut by_table: HashMap<usize, Vec<(usize, &ElMention)>> = HashMap::new();
        for (i, m) in mentions.iter().enumerate() {
            by_table.entry(m.table_idx).or_default().push((i, m));
        }
        let mut out: Vec<Option<u32>> = vec![None; mentions.len()];
        for (table_idx, ms) in by_table {
            let (inst, enc) = self.encode_for_linking(&tables[table_idx], vocab);
            let mut f = Forward::inference(&self.store);
            let h = self.model.encode(&mut f, &self.store, &mut rng, &enc);
            for (orig_idx, m) in ms {
                if m.candidates.is_empty() {
                    continue;
                }
                let Some(entity_index) = inst
                    .entities
                    .iter()
                    .position(|e| e.position == EntityPosition::Cell { row: m.row, col: m.col })
                else {
                    // cell truncated by linearization limits: fall back to
                    // the lookup service's top candidate
                    out[orig_idx] = m.candidates.first().copied();
                    continue;
                };
                let row = inst.entity_seq_index(entity_index);
                let sel = f.graph.index_select0(h, &[row]);
                let q = self.proj.forward(&mut f, &self.store, sel);
                let cand = self.candidate_reprs(&mut f, &self.store, catalog, &m.candidates, d);
                let logits = f.graph.matmul_nt(q, cand);
                let best = f.graph.value(logits).argmax();
                out[orig_idx] = Some(m.candidates[best]);
            }
        }
        out
    }

    /// F1/P/R over mentions (Table 4 protocol).
    pub fn evaluate(
        &self,
        tables: &[Table],
        vocab: &Vocab,
        catalog: &CandidateCatalog,
        mentions: &[ElMention],
    ) -> PrfAccumulator {
        let preds = self.predict(tables, vocab, catalog, mentions);
        let mut acc = PrfAccumulator::new();
        for (p, m) in preds.iter().zip(mentions) {
            acc.add_linking(*p, m.gold);
        }
        acc
    }
}

/// Mean embedding rows for a batch of id lists: `[lists.len(), d]`, zero
/// rows for empty lists.
pub fn mean_embedding_rows(
    f: &mut Forward,
    store: &ParamStore,
    emb: &Embedding,
    lists: &[Vec<usize>],
    d: usize,
) -> Var {
    let flat: Vec<usize> = lists.iter().flatten().copied().collect();
    if flat.is_empty() {
        return f.graph.constant(Tensor::zeros(vec![lists.len(), d]));
    }
    let rows = emb.forward(f, store, &flat);
    let mut avg = Tensor::zeros(vec![lists.len(), flat.len()]);
    let mut off = 0usize;
    for (i, l) in lists.iter().enumerate() {
        let inv = 1.0 / l.len().max(1) as f32;
        for _ in 0..l.len() {
            avg.data_mut()[i * flat.len() + off] = inv;
            off += 1;
        }
    }
    let a = f.graph.constant(avg);
    f.graph.matmul(a, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use crate::tasks::clone_pretrained;
    use turl_kb::tasks::build_entity_linking;
    use turl_kb::{
        generate_corpus, identify_relational, partition, CorpusConfig, KnowledgeBase, LookupIndex,
        PipelineConfig, WorldConfig,
    };

    #[test]
    fn entity_linking_beats_lookup_top1_on_ambiguous_mentions() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(43));
        let pcfg = PipelineConfig { max_eval_tables: 16, ..Default::default() };
        let splits = partition(
            identify_relational(
                generate_corpus(&kb, &CorpusConfig { n_tables: 70, ..CorpusConfig::tiny(44) }),
                &pcfg,
            ),
            &pcfg,
        );
        let texts: Vec<String> = splits
            .train
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v.extend(kb.entities.iter().map(|e| e.description.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let index = LookupIndex::build(&kb);
        let train_ds = build_entity_linking(&splits.train, &index, 20, true);
        let eval_ds = build_entity_linking(&splits.test, &index, 20, false);
        assert!(!train_ds.mentions.is_empty() && !eval_ds.mentions.is_empty());

        let cfg = TurlConfig::tiny(7);
        let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let (model, store) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
        let catalog = CandidateCatalog::build(&kb, &vocab);
        let mut el = EntityLinkingModel::new(model, store, catalog.n_types, true, true);
        let n = train_ds.mentions.len().min(120);
        el.train(
            &splits.train,
            &vocab,
            &catalog,
            &train_ds.mentions[..n],
            &FinetuneConfig { epochs: 4, ..Default::default() },
        );
        let acc = el.evaluate(&splits.test, &vocab, &catalog, &eval_ds.mentions);
        assert!(acc.f1() > 0.3, "EL F1 too low: {}", acc.f1());
    }

    #[test]
    fn mean_embedding_rows_zero_for_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, &mut rng, "e", 10, 4);
        let mut f = Forward::inference(&store);
        let v = mean_embedding_rows(&mut f, &store, &emb, &[vec![], vec![1, 2]], 4);
        let val = f.graph.value(v);
        assert_eq!(val.shape(), &[2, 4]);
        assert!(val.row(0).iter().all(|&x| x == 0.0));
        assert!(val.row(1).iter().any(|&x| x != 0.0));
    }
}
