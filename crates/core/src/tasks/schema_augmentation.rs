//! Schema augmentation (§6.7): recommend headers from a header vocabulary
//! given a caption and zero or a few seed headers. "We concatenate the
//! table caption, seed headers and a `[MASK]` token as input ... the output
//! for `[MASK]` is then used to predict the headers."

use crate::finetune::{train_batched, FinetuneConfig, FinetuneStats};
use crate::input::EncodedInput;
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{tokenize, Vocab};
use turl_kb::tasks::metrics::{average_precision, mean_average_precision};
use turl_kb::tasks::{HeaderVocab, SchemaAugExample};
use turl_nn::{Embedding, Forward, Linear, ParamStore};
use turl_tensor::{Tensor, Var};

/// TURL fine-tuned for schema augmentation.
pub struct SchemaAugModel {
    /// The (pre-trained) encoder.
    pub model: TurlModel,
    /// All parameters including the head.
    pub store: ParamStore,
    header_emb: Embedding,
    proj: Linear,
    n_headers: usize,
}

impl SchemaAugModel {
    /// Wrap a pre-trained model with a learned header-embedding output
    /// layer over `vocab`.
    pub fn new(model: TurlModel, mut store: ParamStore, vocab_size: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0x5AE);
        let d = model.d_model();
        let header_emb = Embedding::new(&mut store, &mut rng, "sa.header_emb", vocab_size, d);
        let proj = Linear::new(&mut store, &mut rng, "sa.proj", d, d, true);
        Self { model, store, header_emb, proj, n_headers: vocab_size }
    }

    /// Caption + seed headers + `[MASK]` token; returns the encoding and
    /// the sequence row of the `[MASK]`.
    fn encode_query(
        &self,
        vocab: &Vocab,
        headers: &HeaderVocab,
        ex: &SchemaAugExample,
    ) -> (EncodedInput, usize) {
        let lin = &self.model.cfg.linearize;
        let mut token_ids: Vec<usize> = Vec::new();
        let mut token_types = Vec::new();
        let mut token_pos = Vec::new();
        for (pos, id) in
            vocab.encode(&ex.caption).into_iter().take(lin.max_caption_tokens).enumerate()
        {
            token_ids.push(id as usize);
            token_types.push(0);
            token_pos.push(pos);
        }
        for (hi, &seed) in ex.seeds.iter().enumerate() {
            for (pos, t) in
                tokenize(headers.header(seed)).iter().take(lin.max_header_tokens).enumerate()
            {
                token_ids.push(vocab.id_or_unk(t) as usize);
                token_types.push(1);
                token_pos.push(pos);
                let _ = hi;
            }
        }
        token_ids.push(vocab.mask_id() as usize);
        token_types.push(0);
        token_pos.push(0);
        let mask_row = token_ids.len() - 1;
        let enc = EncodedInput {
            token_ids,
            token_types,
            token_pos,
            entities: Vec::new(),
            mask: None, // metadata-only query: full visibility
        };
        (enc, mask_row)
    }

    fn logits(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        rng: &mut StdRng,
        vocab: &Vocab,
        headers: &HeaderVocab,
        ex: &SchemaAugExample,
    ) -> Var {
        let (enc, mask_row) = self.encode_query(vocab, headers, ex);
        let h = self.model.encode(f, store, rng, &enc);
        let sel = f.graph.index_select0(h, &[mask_row]);
        let q = self.proj.forward(f, store, sel);
        let hw = f.param(store, self.header_emb.weight);
        f.graph.matmul_nt(q, hw)
    }

    /// Fine-tune with binary cross-entropy over the header vocabulary.
    pub fn train(
        &mut self,
        vocab: &Vocab,
        headers: &HeaderVocab,
        examples: &[SchemaAugExample],
        cfg: &FinetuneConfig,
    ) -> FinetuneStats {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5AF);
        let mut store = std::mem::take(&mut self.store);
        let n_headers = self.n_headers;
        let stats = train_batched(cfg, &mut store, examples.len(), |i, store| {
            let ex = &examples[i];
            let mut f = Forward::new(store);
            let logits = self.logits(&mut f, store, &mut rng, vocab, headers, ex);
            let mut targets = Tensor::zeros(vec![1, n_headers]);
            for &g in &ex.gold {
                targets.data_mut()[g] = 1.0;
            }
            let loss = f.graph.bce_with_logits(logits, targets);
            let out = f.graph.value(loss).item();
            f.backprop(loss, store);
            out
        });
        self.store = store;
        stats
    }

    /// Rank the header vocabulary for a query (seeds excluded).
    pub fn rank(&self, vocab: &Vocab, headers: &HeaderVocab, ex: &SchemaAugExample) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut f = Forward::inference(&self.store);
        let logits = self.logits(&mut f, &self.store, &mut rng, vocab, headers, ex);
        let scores = f.graph.value(logits).data().to_vec();
        let mut order: Vec<usize> = (0..scores.len()).filter(|i| !ex.seeds.contains(i)).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b)));
        order
    }

    /// MAP over a split (Table 10).
    pub fn map(&self, vocab: &Vocab, headers: &HeaderVocab, examples: &[SchemaAugExample]) -> f64 {
        let aps: Vec<f64> = examples
            .iter()
            .map(|ex| average_precision(&self.rank(vocab, headers, ex), &ex.gold))
            .collect();
        mean_average_precision(&aps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use crate::tasks::clone_pretrained;
    use turl_kb::tasks::{build_header_vocab, build_schema_augmentation};
    use turl_kb::{
        generate_corpus, identify_relational, partition, CorpusConfig, KnowledgeBase,
        PipelineConfig, WorldConfig,
    };

    #[test]
    fn schema_augmentation_learns_caption_header_correlation() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(73));
        let pcfg = PipelineConfig { max_eval_tables: 20, ..Default::default() };
        let splits = partition(
            identify_relational(
                generate_corpus(&kb, &CorpusConfig { n_tables: 100, ..CorpusConfig::tiny(74) }),
                &pcfg,
            ),
            &pcfg,
        );
        let texts: Vec<String> = splits
            .train
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let headers = build_header_vocab(&splits.train, 2);
        let train_ex = build_schema_augmentation(&splits.train, &headers, 0);
        let eval_ex = build_schema_augmentation(&splits.test, &headers, 0);
        assert!(!train_ex.is_empty() && !eval_ex.is_empty());

        let cfg = TurlConfig::tiny(11);
        let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let (model, store) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
        let mut sa = SchemaAugModel::new(model, store, headers.len());
        let random_map = sa.map(&vocab, &headers, &eval_ex);
        let n = train_ex.len().min(60);
        sa.train(
            &vocab,
            &headers,
            &train_ex[..n],
            &FinetuneConfig { epochs: 8, ..Default::default() },
        );
        let trained_map = sa.map(&vocab, &headers, &eval_ex);
        assert!(trained_map > random_map, "training did not help: {random_map} -> {trained_map}");
    }
}
