//! Column type annotation (§6.3): multi-label classification of entity
//! columns with the Eqn. 9/10 head.

use super::{column_repr, encode_table_with_channels, multi_hot, predict_labels, InputChannels};
use crate::finetune::{train_batched, FinetuneConfig, FinetuneStats};
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{Table, Vocab};
use turl_kb::tasks::metrics::PrfAccumulator;
use turl_kb::tasks::ColumnTypeExample;
use turl_nn::{Forward, Linear, ParamStore};

/// TURL fine-tuned for column type annotation.
pub struct ColumnTypeModel {
    /// The (pre-trained) encoder.
    pub model: TurlModel,
    /// All parameters, including the task head.
    pub store: ParamStore,
    head: Linear,
    channels: InputChannels,
    n_labels: usize,
}

impl ColumnTypeModel {
    /// Wrap a pre-trained model with a fresh `2d → n_labels` head.
    pub fn new(
        model: TurlModel,
        mut store: ParamStore,
        n_labels: usize,
        channels: InputChannels,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0xC01);
        let d = model.d_model();
        let head = Linear::new(&mut store, &mut rng, "ct.head", 2 * d, n_labels, true);
        Self { model, store, head, channels, n_labels }
    }

    fn logits(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        rng: &mut StdRng,
        tables: &[Table],
        vocab: &Vocab,
        ex: &ColumnTypeExample,
    ) -> turl_tensor::Var {
        let (inst, enc) = encode_table_with_channels(
            &tables[ex.table_idx],
            vocab,
            &self.model.cfg.linearize,
            self.model.cfg.use_visibility,
            self.channels,
        );
        let h = self.model.encode(f, store, rng, &enc);
        let hc = column_repr(f, h, &inst, ex.col, self.model.d_model());
        self.head.forward(f, store, hc)
    }

    /// Fine-tune on labeled columns with binary cross-entropy (Eqn. 11).
    pub fn train(
        &mut self,
        tables: &[Table],
        vocab: &Vocab,
        examples: &[ColumnTypeExample],
        cfg: &FinetuneConfig,
    ) -> FinetuneStats {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC02);
        let mut store = std::mem::take(&mut self.store);
        let stats = train_batched(cfg, &mut store, examples.len(), |i, store| {
            let ex = &examples[i];
            let mut f = Forward::new(store);
            let logits = self.logits(&mut f, store, &mut rng, tables, vocab, ex);
            let targets = multi_hot(&ex.labels, self.n_labels);
            let loss = f.graph.bce_with_logits(logits, targets);
            let out = f.graph.value(loss).item();
            f.backprop(loss, store);
            out
        });
        self.store = store;
        stats
    }

    /// Predicted label indices for one column.
    pub fn predict(&self, tables: &[Table], vocab: &Vocab, ex: &ColumnTypeExample) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut f = Forward::inference(&self.store);
        let logits = self.logits(&mut f, &self.store, &mut rng, tables, vocab, ex);
        predict_labels(f.graph.value(logits))
    }

    /// Micro P/R/F1 over a split.
    pub fn evaluate(
        &self,
        tables: &[Table],
        vocab: &Vocab,
        examples: &[ColumnTypeExample],
    ) -> PrfAccumulator {
        let mut acc = PrfAccumulator::new();
        for ex in examples {
            let pred = self.predict(tables, vocab, ex);
            acc.add_sets(&pred, &ex.labels);
        }
        acc
    }

    /// Per-label F1 for selected labels (Table 6 of the paper).
    pub fn per_label_f1(
        &self,
        tables: &[Table],
        vocab: &Vocab,
        examples: &[ColumnTypeExample],
        labels: &[usize],
    ) -> Vec<f64> {
        let mut accs = vec![PrfAccumulator::new(); labels.len()];
        for ex in examples {
            let pred = self.predict(tables, vocab, ex);
            for (ai, &l) in labels.iter().enumerate() {
                let p: Vec<usize> = pred.iter().copied().filter(|&x| x == l).collect();
                let g: Vec<usize> = ex.labels.iter().copied().filter(|&x| x == l).collect();
                accs[ai].add_sets(&p, &g);
            }
        }
        accs.iter().map(PrfAccumulator::f1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use crate::tasks::clone_pretrained;
    use turl_kb::tasks::build_column_type_task;
    use turl_kb::{
        generate_corpus, identify_relational, partition, CorpusConfig, KnowledgeBase,
        PipelineConfig, WorldConfig,
    };

    #[test]
    fn column_type_finetune_beats_chance() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(23));
        let pcfg = PipelineConfig { max_eval_tables: 20, ..Default::default() };
        let splits = partition(
            identify_relational(
                generate_corpus(&kb, &CorpusConfig { n_tables: 80, ..CorpusConfig::tiny(24) }),
                &pcfg,
            ),
            &pcfg,
        );
        let texts: Vec<String> = splits
            .train
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let task =
            build_column_type_task(&kb, &splits.train, &splits.validation, &splits.test, 3, 3);
        assert!(!task.train.is_empty() && !task.test.is_empty());

        let cfg = TurlConfig::tiny(5);
        let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let (model, store) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
        let mut ct =
            ColumnTypeModel::new(model, store, task.label_types.len(), InputChannels::full());
        let n_train = task.train.len().min(40);
        let stats = ct.train(
            &splits.train,
            &vocab,
            &task.train[..n_train],
            &FinetuneConfig { epochs: 6, ..Default::default() },
        );
        assert!(stats.final_loss() < stats.epoch_losses[0], "loss should drop");
        let acc = ct.evaluate(&splits.test, &vocab, &task.test);
        assert!(acc.f1() > 0.3, "F1 too low: {}", acc.f1());
    }
}
