//! Cell filling (§6.6): predict the object entity for a subject entity and
//! an object header. "Since cell filling is very similar to the MER
//! pre-training task, we do not fine-tune the model" — the pre-trained MER
//! head ranks the candidates directly.

use crate::input::{EncodedInput, EntityInput};
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{tokenize, Table, Vocab};
use turl_kb::tasks::metrics::hit_at_k;
use turl_kb::tasks::CellFillingExample;
use turl_kb::KnowledgeBase;
use turl_nn::{Forward, ParamStore};

/// Zero-shot cell filler built on the pre-trained MER head.
pub struct CellFiller<'a> {
    /// The pre-trained model.
    pub model: &'a TurlModel,
    /// Its parameters.
    pub store: &'a ParamStore,
}

impl<'a> CellFiller<'a> {
    /// Wrap a pre-trained model.
    pub fn new(model: &'a TurlModel, store: &'a ParamStore) -> Self {
        Self { model, store }
    }

    /// Build the query: table caption, subject header, target header, the
    /// subject entity cell, and a masked object cell in the same row.
    fn encode_query(
        &self,
        vocab: &Vocab,
        kb: &KnowledgeBase,
        table: &Table,
        ex: &CellFillingExample,
    ) -> (EncodedInput, usize) {
        let mask_word = vocab.mask_id() as usize;
        let lin = &self.model.cfg.linearize;
        let mut token_ids = Vec::new();
        let mut token_types = Vec::new();
        let mut token_pos = Vec::new();
        for (pos, id) in
            vocab.encode(&table.full_caption()).into_iter().take(lin.max_caption_tokens).enumerate()
        {
            token_ids.push(id as usize);
            token_types.push(0);
            token_pos.push(pos);
        }
        let subj_header = table.headers.get(table.subject_column).cloned().unwrap_or_default();
        for (hi, header) in [subj_header, ex.target_header.clone()].iter().enumerate() {
            for (pos, t) in tokenize(header).iter().take(lin.max_header_tokens).enumerate() {
                token_ids.push(vocab.id_or_unk(t) as usize);
                token_types.push(1);
                token_pos.push(pos);
                let _ = hi;
            }
        }
        let subj_mention: Vec<usize> = {
            let m: Vec<usize> = vocab
                .encode(&kb.entity(ex.subject).name)
                .into_iter()
                .take(lin.max_mention_tokens)
                .map(|t| t as usize)
                .collect();
            if m.is_empty() {
                vec![mask_word]
            } else {
                m
            }
        };
        let entities = vec![
            EntityInput { emb_index: ex.subject as usize + 1, mention: subj_mention, type_idx: 1 },
            EntityInput { emb_index: 0, mention: vec![mask_word], type_idx: 2 },
        ];
        let enc = EncodedInput {
            token_ids,
            token_types,
            token_pos,
            entities,
            // two cells in one row plus metadata: everything mutually visible
            mask: None,
        };
        (enc, 1)
    }

    /// Rank the example's candidates with Eqn. 6 (best first).
    pub fn rank(
        &self,
        vocab: &Vocab,
        kb: &KnowledgeBase,
        tables: &[Table],
        ex: &CellFillingExample,
    ) -> Vec<u32> {
        if ex.candidates.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let (enc, mask_cell) = self.encode_query(vocab, kb, &tables[ex.table_idx], ex);
        let mut f = Forward::inference(self.store);
        let h = self.model.encode(&mut f, self.store, &mut rng, &enc);
        let cands: Vec<usize> = ex.candidates.iter().map(|(e, _)| *e as usize).collect();
        let logits =
            self.model.mer_logits(&mut f, self.store, h, &[enc.entity_row(mask_cell)], &cands);
        let scores = f.graph.value(logits).data().to_vec();
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b)));
        order.into_iter().map(|i| ex.candidates[i].0).collect()
    }

    /// P@K over instances whose candidate set contains the gold entity
    /// (the Table 9 protocol).
    pub fn precision_at(
        &self,
        vocab: &Vocab,
        kb: &KnowledgeBase,
        tables: &[Table],
        examples: &[CellFillingExample],
        ks: &[usize],
    ) -> Vec<f64> {
        let mut hits = vec![0usize; ks.len()];
        let mut total = 0usize;
        for ex in examples {
            if !ex.gold_in_candidates() {
                continue;
            }
            total += 1;
            let ranked = self.rank(vocab, kb, tables, ex);
            for (i, &k) in ks.iter().enumerate() {
                if hit_at_k(&ranked, &ex.gold, k) {
                    hits[i] += 1;
                }
            }
        }
        ks.iter()
            .enumerate()
            .map(|(i, _)| if total == 0 { 0.0 } else { hits[i] as f64 / total as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use turl_kb::tasks::build_cell_filling;
    use turl_kb::{
        generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig,
        PipelineConfig, WorldConfig,
    };

    #[test]
    fn cell_filler_ranks_candidates() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(63));
        let pcfg = PipelineConfig { max_eval_tables: 16, ..Default::default() };
        let splits = partition(
            identify_relational(
                generate_corpus(&kb, &CorpusConfig { n_tables: 120, ..CorpusConfig::tiny(64) }),
                &pcfg,
            ),
            &pcfg,
        );
        let texts: Vec<String> = splits
            .train
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.headers.clone());
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let cooccur = CooccurrenceIndex::build(&splits.train);
        let examples = build_cell_filling(&splits.test, &cooccur, 3, true);
        assert!(!examples.is_empty());

        let cfg = TurlConfig::tiny(10);
        let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let filler = CellFiller::new(&pt.model, &pt.store);
        let ps = filler.precision_at(
            &vocab,
            &kb,
            &splits.test,
            &examples[..40.min(examples.len())],
            &[1, 3, 5, 10],
        );
        assert_eq!(ps.len(), 4);
        // P@K must be monotone in K
        for w in ps.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "P@K not monotone: {ps:?}");
        }
    }
}
