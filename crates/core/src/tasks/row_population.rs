//! Row population (§6.5): rank candidate subject entities for a partial
//! table, scoring a `[MASK]` cell against candidate entity embeddings
//! (Eqn. 13).

use crate::finetune::{train_batched, FinetuneConfig, FinetuneStats};
use crate::input::{EncodedInput, EntityInput};
use crate::model::TurlModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use turl_data::{tokenize, Vocab};
use turl_kb::tasks::metrics::{average_precision, candidate_recall, mean_average_precision};
use turl_kb::tasks::RowPopulationExample;
use turl_kb::KnowledgeBase;
use turl_nn::{Forward, Linear, ParamStore};
use turl_tensor::{Tensor, Var};

/// TURL fine-tuned for row population.
pub struct RowPopulationModel {
    /// The (pre-trained) encoder.
    pub model: TurlModel,
    /// All parameters including the head.
    pub store: ParamStore,
    proj: Linear,
}

impl RowPopulationModel {
    /// Wrap a pre-trained model with the Eqn. 13 `LINEAR` head.
    pub fn new(model: TurlModel, mut store: ParamStore) -> Self {
        let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0x509);
        let d = model.d_model();
        let proj = Linear::new(&mut store, &mut rng, "rp.proj", d, d, true);
        Self { model, store, proj }
    }

    /// Build the query input: caption tokens, seed subject cells, and an
    /// appended `[MASK]` subject cell whose representation ranks
    /// candidates.
    fn encode_query(
        &self,
        vocab: &Vocab,
        kb: &KnowledgeBase,
        ex: &RowPopulationExample,
    ) -> (EncodedInput, usize) {
        let mask_word = vocab.mask_id() as usize;
        let caption_ids: Vec<usize> = tokenize(&ex.caption)
            .iter()
            .take(self.model.cfg.linearize.max_caption_tokens)
            .map(|t| vocab.id_or_unk(t) as usize)
            .collect();
        let n_tok = caption_ids.len();
        let mut entities: Vec<EntityInput> = ex
            .seeds
            .iter()
            .map(|&s| EntityInput {
                emb_index: s as usize + 1,
                mention: {
                    let m: Vec<usize> = vocab
                        .encode(&kb.entity(s).name)
                        .into_iter()
                        .take(self.model.cfg.linearize.max_mention_tokens)
                        .map(|t| t as usize)
                        .collect();
                    if m.is_empty() {
                        vec![mask_word]
                    } else {
                        m
                    }
                },
                type_idx: 1,
            })
            .collect();
        entities.push(EntityInput { emb_index: 0, mention: vec![mask_word], type_idx: 1 });
        let mask_cell = entities.len() - 1;
        // caption sees everything; subject-column cells see each other:
        // with only same-column elements present, full visibility is the
        // correct visibility matrix here.
        let enc = EncodedInput {
            token_ids: caption_ids.clone(),
            token_types: vec![0; n_tok],
            token_pos: (0..n_tok).collect(),
            entities,
            mask: None,
        };
        (enc, mask_cell)
    }

    fn candidate_scores(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        h: Var,
        row: usize,
        candidates: &[u32],
    ) -> Var {
        let sel = f.graph.index_select0(h, &[row]);
        let q = self.proj.forward(f, store, sel);
        let ents = f.param(store, self.model.ent_emb.weight);
        let shifted: Vec<usize> = candidates.iter().map(|&c| c as usize + 1).collect();
        let cand = f.graph.index_select0(ents, &shifted);
        f.graph.matmul_nt(q, cand)
    }

    /// Fine-tune with the multi-label soft-margin objective of Eqn. 13.
    pub fn train(
        &mut self,
        vocab: &Vocab,
        kb: &KnowledgeBase,
        examples: &[RowPopulationExample],
        cfg: &FinetuneConfig,
    ) -> FinetuneStats {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x50A);
        let usable: Vec<&RowPopulationExample> =
            examples.iter().filter(|e| !e.candidates.is_empty()).collect();
        let mut store = std::mem::take(&mut self.store);
        let stats = train_batched(cfg, &mut store, usable.len(), |i, store| {
            let ex = usable[i];
            let (enc, mask_cell) = self.encode_query(vocab, kb, ex);
            let mut f = Forward::new(store);
            let h = self.model.encode(&mut f, store, &mut rng, &enc);
            let row = enc.entity_row(mask_cell);
            let logits = self.candidate_scores(&mut f, store, h, row, &ex.candidates);
            let mut targets = Tensor::zeros(vec![1, ex.candidates.len()]);
            for (j, c) in ex.candidates.iter().enumerate() {
                if ex.gold.contains(c) {
                    targets.data_mut()[j] = 1.0;
                }
            }
            let loss = f.graph.bce_with_logits(logits, targets);
            let out = f.graph.value(loss).item();
            f.backprop(loss, store);
            out
        });
        self.store = store;
        stats
    }

    /// Rank an example's candidates (best first).
    pub fn rank(&self, vocab: &Vocab, kb: &KnowledgeBase, ex: &RowPopulationExample) -> Vec<u32> {
        if ex.candidates.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let (enc, mask_cell) = self.encode_query(vocab, kb, ex);
        let mut f = Forward::inference(&self.store);
        let h = self.model.encode(&mut f, &self.store, &mut rng, &enc);
        let row = enc.entity_row(mask_cell);
        let logits = self.candidate_scores(&mut f, &self.store, h, row, &ex.candidates);
        let scores = f.graph.value(logits).data().to_vec();
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b)));
        order.into_iter().map(|i| ex.candidates[i]).collect()
    }

    /// `(MAP, candidate recall)` over a split — the two columns of
    /// Table 8.
    pub fn evaluate(
        &self,
        vocab: &Vocab,
        kb: &KnowledgeBase,
        examples: &[RowPopulationExample],
    ) -> (f64, f64) {
        let mut aps = Vec::new();
        let mut recalls = Vec::new();
        for ex in examples {
            let ranked = self.rank(vocab, kb, ex);
            aps.push(average_precision(&ranked, &ex.gold));
            recalls.push(candidate_recall(&ex.candidates, &ex.gold));
        }
        (
            mean_average_precision(&aps),
            if recalls.is_empty() {
                0.0
            } else {
                recalls.iter().sum::<f64>() / recalls.len() as f64
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use crate::pretrain::Pretrainer;
    use crate::tasks::clone_pretrained;
    use turl_kb::tasks::build_row_population;
    use turl_kb::{
        generate_corpus, identify_relational, partition, CorpusConfig, PipelineConfig,
        TableSearchIndex, WorldConfig,
    };

    #[test]
    fn row_population_trains_and_ranks() {
        let kb = KnowledgeBase::generate(&WorldConfig::tiny(53));
        let pcfg = PipelineConfig { max_eval_tables: 20, ..Default::default() };
        let splits = partition(
            identify_relational(
                generate_corpus(&kb, &CorpusConfig { n_tables: 120, ..CorpusConfig::tiny(54) }),
                &pcfg,
            ),
            &pcfg,
        );
        let texts: Vec<String> = splits
            .train
            .iter()
            .flat_map(|t| {
                let mut v = vec![t.full_caption()];
                v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
                v
            })
            .collect();
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        let search = TableSearchIndex::build(&splits.train);
        let train_ex = build_row_population(&splits.train, &search, 1, 4, 10);
        let eval_ex = build_row_population(&splits.test, &search, 1, 5, 10);
        assert!(!train_ex.is_empty() && !eval_ex.is_empty());

        let cfg = TurlConfig::tiny(8);
        let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        let (model, store) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
        let mut rp = RowPopulationModel::new(model, store);
        let n = train_ex.len().min(40);
        let stats = rp.train(
            &vocab,
            &kb,
            &train_ex[..n],
            &FinetuneConfig { epochs: 4, ..Default::default() },
        );
        assert!(stats.final_loss().is_finite());
        let (map, recall) = rp.evaluate(&vocab, &kb, &eval_ex);
        assert!((0.0..=1.0).contains(&map));
        assert!(recall > 0.0, "candidate recall must be positive");
        // ranked list is a permutation of candidates
        let r = rp.rank(&vocab, &kb, &eval_ex[0]);
        assert_eq!(r.len(), eval_ex[0].candidates.len());
    }
}
