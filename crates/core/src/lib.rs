//! TURL: Table Understanding through Representation Learning.
//!
//! This crate implements the paper's contribution on top of the workspace
//! substrates:
//!
//! * the input **embedding layer** of §4.2 — token embeddings
//!   `x_t = w + t + p` and fused entity embeddings
//!   `x_e = LINEAR([e^e; e^m]) + t_e` ([`TurlModel`]);
//! * the **structure-aware Transformer encoder** of §4.3 — multi-head
//!   self-attention masked by the table-derived visibility matrix;
//! * the **pre-training objectives** of §4.4 — Masked Language Model over
//!   metadata tokens and Masked Entity Recovery over entity cells, with
//!   candidate-set softmax ([`Pretrainer`], [`MaskPlan`]);
//! * **fine-tuning heads** for all six TUBE tasks (module [`tasks`]);
//! * the Figure-7 **object-entity prediction probe** ([`probe`]);
//! * a **compiled inference path** ([`CompiledForward`]) — the encoder
//!   lowered through `turl-audit`'s IR and `turl-exec`'s fusing compiler
//!   into a graph-free, arena-backed schedule, bit-exact vs the tape.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the full pipeline: generate a synthetic
//! corpus, pre-train, inspect entity embeddings, then fine-tune.

#![deny(missing_docs)]

pub mod audit;
mod batch;
mod compiled;
mod config;
mod extensions;
mod finetune;
mod input;
mod model;
mod pretrain;
pub mod probe;
pub mod tasks;

pub use batch::TableBatch;
pub use compiled::{CompiledForward, DEFAULT_PLAN_CACHE_CAP};
pub use config::{CandidateConfig, PretrainConfig, TurlConfig};
pub use extensions::{AuxRelationObjective, RelationPair};
pub use finetune::{FinetuneConfig, FinetuneStats};
pub use input::{EncodedInput, EntityInput};
pub use model::TurlModel;
pub use pretrain::{
    apply_mask_plan, build_candidates, random_entity_id, random_word_id, CheckpointPolicy,
    MaskPlan, PretrainStats, Pretrainer, StepOutcome,
};
