//! Model and pre-training configuration.

use serde::{Deserialize, Serialize};
use turl_data::LinearizeConfig;
use turl_nn::TransformerConfig;

/// Candidate-set construction for the MER softmax (Eqn. 6): "entities in
/// the current table, entities that have co-occurred with those in the
/// current table, and randomly sampled negative entities".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Include the current table's entities.
    pub use_table_entities: bool,
    /// Maximum co-occurring entities added.
    pub max_cooccurring: usize,
    /// Number of random negatives added.
    pub n_random_negatives: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        Self { use_table_entities: true, max_cooccurring: 48, n_random_negatives: 16 }
    }
}

/// §4.4 masking hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Fraction of token positions selected for MLM (paper: 0.2).
    pub mlm_select_ratio: f64,
    /// Fraction of entity cells selected for MER (paper: 0.6; Figure 7b
    /// sweeps this).
    pub mer_select_ratio: f64,
    /// Among MER-selected cells that get their entity masked, the share
    /// that keeps its mention visible (paper: 0.3 — the "27%" branch).
    pub mer_mention_keep_share: f64,
    /// Adam learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// Tables per optimizer step.
    pub batch_size: usize,
    /// Gradient clipping threshold.
    pub max_grad_norm: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            mlm_select_ratio: 0.2,
            mer_select_ratio: 0.6,
            mer_mention_keep_share: 0.3,
            learning_rate: 1e-3,
            batch_size: 8,
            max_grad_norm: 5.0,
        }
    }
}

/// Full TURL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurlConfig {
    /// Encoder stack (N, d_model, d_intermediate, heads, dropout).
    pub encoder: TransformerConfig,
    /// Table linearization limits.
    pub linearize: LinearizeConfig,
    /// Pre-training hyper-parameters.
    pub pretrain: PretrainConfig,
    /// MER candidate-set construction.
    pub candidates: CandidateConfig,
    /// Whether the structure-derived visibility matrix is applied
    /// (`false` reproduces the Figure-7a ablation).
    pub use_visibility: bool,
    /// Maximum position index for the position embedding table.
    pub max_position: usize,
    /// Base RNG seed for initialization and masking.
    pub seed: u64,
}

impl TurlConfig {
    /// The paper's configuration (TinyBERT-sized encoder).
    pub fn paper() -> Self {
        Self {
            encoder: TransformerConfig::paper(),
            linearize: LinearizeConfig::default(),
            pretrain: PretrainConfig { learning_rate: 1e-4, ..Default::default() },
            candidates: CandidateConfig::default(),
            use_visibility: true,
            max_position: 64,
            seed: 0,
        }
    }

    /// CPU-scale configuration used by the experiment harness.
    pub fn small(seed: u64) -> Self {
        Self {
            encoder: TransformerConfig::small(),
            linearize: LinearizeConfig::default(),
            pretrain: PretrainConfig::default(),
            candidates: CandidateConfig::default(),
            use_visibility: true,
            max_position: 64,
            seed,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            encoder: TransformerConfig::tiny(),
            linearize: LinearizeConfig::default(),
            pretrain: PretrainConfig { batch_size: 4, learning_rate: 2e-3, ..Default::default() },
            candidates: CandidateConfig {
                max_cooccurring: 16,
                n_random_negatives: 8,
                ..Default::default()
            },
            use_visibility: true,
            max_position: 64,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4_4() {
        let c = TurlConfig::paper();
        assert_eq!(c.encoder.n_layers, 4);
        assert_eq!(c.encoder.d_model, 312);
        assert_eq!(c.pretrain.mlm_select_ratio, 0.2);
        assert_eq!(c.pretrain.mer_select_ratio, 0.6);
        assert_eq!(c.pretrain.learning_rate, 1e-4);
        assert!(c.use_visibility);
    }

    #[test]
    fn configs_serialize() {
        let c = TurlConfig::small(3);
        let json = serde_json::to_string(&c).unwrap();
        let back: TurlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
