//! The TURL model: embedding layer, structure-aware encoder, and the
//! projection heads used by pre-training and fine-tuning.

use crate::config::TurlConfig;
use crate::input::EncodedInput;
use rand::Rng;
use turl_nn::{Dropout, Embedding, Forward, LayerNorm, Linear, ParamStore, TransformerBlock};
use turl_tensor::{Tensor, Var};

/// TURL: embedding layer (§4.2), visibility-masked Transformer stack
/// (§4.3) and the MLM/MER projection heads (§4.4).
pub struct TurlModel {
    /// Configuration the model was built with.
    pub cfg: TurlConfig,
    /// Word embeddings `w` (shared with both output softmaxes).
    pub word_emb: Embedding,
    /// Token type embeddings `t` (caption vs header).
    pub token_type_emb: Embedding,
    /// Position embeddings `p`.
    pub pos_emb: Embedding,
    /// Entity embeddings `e^e` (row 0 is the entity `[MASK]`).
    pub ent_emb: Embedding,
    /// Entity type embeddings `t_e` (topic / subject / object).
    pub ent_type_emb: Embedding,
    /// The `LINEAR([e^e; e^m])` fusion of Eqn. 2.
    pub fuse: Linear,
    /// Embedding layer norm.
    pub ln_embed: LayerNorm,
    /// Embedding dropout.
    pub embed_dropout: Dropout,
    /// Encoder blocks.
    pub blocks: Vec<TransformerBlock>,
    /// MLM output projection (Eqn. 5).
    pub mlm_proj: Linear,
    /// MER output projection (Eqn. 6).
    pub mer_proj: Linear,
}

impl TurlModel {
    /// Create a model over a vocabulary of `n_words` words and
    /// `n_entities` entities.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        cfg: TurlConfig,
        n_words: usize,
        n_entities: usize,
    ) -> Self {
        // Fail fast on structurally invalid configs: the symbolic plan
        // check catches shape bugs before any parameter is allocated.
        if let Err(e) = crate::audit::validate_config(&cfg, n_words, n_entities) {
            panic!("TurlModel::new rejected by static audit: {e}");
        }
        let d = cfg.encoder.d_model;
        let blocks = (0..cfg.encoder.n_layers)
            .map(|i| TransformerBlock::new(store, rng, &format!("turl.block{i}"), &cfg.encoder))
            .collect();
        Self {
            word_emb: Embedding::new(store, rng, "turl.word_emb", n_words, d),
            token_type_emb: Embedding::new(store, rng, "turl.token_type_emb", 2, d),
            pos_emb: Embedding::new(store, rng, "turl.pos_emb", cfg.max_position, d),
            ent_emb: Embedding::new(store, rng, "turl.ent_emb", n_entities + 1, d),
            ent_type_emb: Embedding::new(store, rng, "turl.ent_type_emb", 3, d),
            fuse: Linear::new(store, rng, "turl.fuse", 2 * d, d, true),
            ln_embed: LayerNorm::new(store, "turl.ln_embed", d, cfg.encoder.ln_eps),
            embed_dropout: Dropout::new(cfg.encoder.dropout),
            blocks,
            mlm_proj: Linear::new(store, rng, "turl.mlm_proj", d, d, true),
            mer_proj: Linear::new(store, rng, "turl.mer_proj", d, d, true),
            cfg,
        }
    }

    /// Model hidden dimension.
    pub fn d_model(&self) -> usize {
        self.cfg.encoder.d_model
    }

    /// Number of entities in the embedding table (excluding `[MASK]`).
    pub fn n_entities(&self) -> usize {
        self.ent_emb.vocab - 1
    }

    /// Initialize entity embeddings as the average of their name's word
    /// embeddings (the paper's initialization). `name_tokens[e]` holds the
    /// word ids of entity `e`'s name.
    pub fn init_entity_embeddings_from_names(
        &self,
        store: &mut ParamStore,
        name_tokens: &[Vec<usize>],
    ) {
        assert_eq!(name_tokens.len(), self.n_entities(), "one name per entity");
        let d = self.d_model();
        let words = store.value(self.word_emb.weight).clone();
        let ent = store.value_mut(self.ent_emb.weight);
        for (e, toks) in name_tokens.iter().enumerate() {
            if toks.is_empty() {
                continue;
            }
            let row = (e + 1) * d;
            let inv = 1.0 / toks.len() as f32;
            for j in 0..d {
                let mut acc = 0.0f32;
                for &t in toks {
                    acc += words.data()[t * d + j];
                }
                ent.data_mut()[row + j] = acc * inv;
            }
        }
    }

    /// Mean mention embedding `e^m` (Eqn. 3) for a batch of mentions,
    /// computed as an averaging matrix over gathered word embeddings.
    fn mention_means(&self, f: &mut Forward, store: &ParamStore, mentions: &[Vec<usize>]) -> Var {
        let flat: Vec<usize> = mentions.iter().flatten().copied().collect();
        let total = flat.len();
        let rows = self.word_emb.forward(f, store, &flat); // [total, d]
        let mut avg = Tensor::zeros(vec![mentions.len(), total.max(1)]);
        let mut off = 0usize;
        for (i, m) in mentions.iter().enumerate() {
            let inv = 1.0 / m.len().max(1) as f32;
            for _ in 0..m.len() {
                avg.data_mut()[i * total.max(1) + off] = inv;
                off += 1;
            }
        }
        if total == 0 {
            // no mention tokens at all: zero vectors
            return f.graph.constant(Tensor::zeros(vec![mentions.len(), self.d_model()]));
        }
        let a = f.graph.constant(avg);
        f.graph.matmul(a, rows)
    }

    /// Embed the input sequence (Eqns. 1–3): token block followed by the
    /// entity block, layer-normed.
    fn embed<R: Rng>(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        rng: &mut R,
        input: &EncodedInput,
    ) -> Var {
        assert!(input.seq_len() > 0, "empty input sequence");
        let mut parts: Vec<Var> = Vec::new();
        if !input.token_ids.is_empty() {
            let w = self.word_emb.forward(f, store, &input.token_ids);
            let t = self.token_type_emb.forward(f, store, &input.token_types);
            let pos: Vec<usize> =
                input.token_pos.iter().map(|&p| p.min(self.cfg.max_position - 1)).collect();
            let p = self.pos_emb.forward(f, store, &pos);
            let wt = f.graph.add(w, t);
            parts.push(f.graph.add(wt, p));
        }
        if !input.entities.is_empty() {
            let ids: Vec<usize> = input.entities.iter().map(|e| e.emb_index).collect();
            let ee = self.ent_emb.forward(f, store, &ids);
            let mentions: Vec<Vec<usize>> =
                input.entities.iter().map(|e| e.mention.clone()).collect();
            let em = self.mention_means(f, store, &mentions);
            let cat = f.graph.concat_cols(&[ee, em]);
            let fused = self.fuse.forward(f, store, cat);
            let types: Vec<usize> = input.entities.iter().map(|e| e.type_idx).collect();
            let te = self.ent_type_emb.forward(f, store, &types);
            parts.push(f.graph.add(fused, te));
        }
        let x = if parts.len() == 1 { parts[0] } else { f.graph.concat_rows(&parts) };
        let normed = self.ln_embed.forward(f, store, x);
        self.embed_dropout.forward(f, rng, normed)
    }

    /// Full encoder: embeddings then `N` visibility-masked Transformer
    /// blocks. Returns contextualized representations `[n, d_model]`.
    pub fn encode<R: Rng>(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        rng: &mut R,
        input: &EncodedInput,
    ) -> Var {
        let mut h = self.embed(f, store, rng, input);
        // One shared constant node for the visibility mask: every layer
        // adds the same Var instead of cloning the [n, n] tensor per block.
        let mask = input.mask.as_ref().map(|m| turl_nn::MultiHeadAttention::bind_mask(f, m));
        for block in &self.blocks {
            h = block.forward(f, store, rng, h, mask);
        }
        h
    }

    /// MLM logits (Eqn. 5) for the given sequence rows: scores over the
    /// whole word vocabulary.
    pub fn mlm_logits(&self, f: &mut Forward, store: &ParamStore, h: Var, rows: &[usize]) -> Var {
        let sel = f.graph.index_select0(h, rows);
        let proj = self.mlm_proj.forward(f, store, sel);
        let words = f.param(store, self.word_emb.weight);
        f.graph.matmul_nt(proj, words)
    }

    /// MER logits (Eqn. 6) for the given sequence rows, restricted to a
    /// candidate set of entity ids (unshifted KB ids).
    pub fn mer_logits(
        &self,
        f: &mut Forward,
        store: &ParamStore,
        h: Var,
        rows: &[usize],
        candidates: &[usize],
    ) -> Var {
        let sel = f.graph.index_select0(h, rows);
        let proj = self.mer_proj.forward(f, store, sel);
        let ents = f.param(store, self.ent_emb.weight);
        let shifted: Vec<usize> = candidates.iter().map(|&c| c + 1).collect();
        let cand = f.graph.index_select0(ents, &shifted);
        f.graph.matmul_nt(proj, cand)
    }

    /// Frozen entity-embedding matrix (value snapshot), for inspection and
    /// baselines that consume pre-trained embeddings.
    pub fn entity_embedding_matrix<'a>(&self, store: &'a ParamStore) -> &'a Tensor {
        store.value(self.ent_emb.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::EntityInput;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> (ParamStore, TurlModel, StdRng) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let model = TurlModel::new(&mut store, &mut rng, TurlConfig::tiny(9), 50, 20);
        (store, model, rng)
    }

    fn toy_input() -> EncodedInput {
        EncodedInput {
            token_ids: vec![4, 5, 6],
            token_types: vec![0, 0, 1],
            token_pos: vec![0, 1, 0],
            entities: vec![
                EntityInput { emb_index: 3, mention: vec![7], type_idx: 1 },
                EntityInput { emb_index: 0, mention: vec![2], type_idx: 2 },
            ],
            mask: None,
        }
    }

    #[test]
    fn encode_produces_one_row_per_element() {
        let (store, model, mut rng) = tiny_model();
        let mut f = Forward::inference(&store);
        let input = toy_input();
        let h = model.encode(&mut f, &store, &mut rng, &input);
        assert_eq!(f.graph.value(h).shape(), &[5, 16]);
        assert!(f.graph.value(h).all_finite());
    }

    #[test]
    fn encode_handles_token_only_and_entity_only() {
        let (store, model, mut rng) = tiny_model();
        let mut input = toy_input();
        input.entities.clear();
        let mut f = Forward::inference(&store);
        let h = model.encode(&mut f, &store, &mut rng, &input);
        assert_eq!(f.graph.value(h).shape(), &[3, 16]);

        let mut input2 = toy_input();
        input2.token_ids.clear();
        input2.token_types.clear();
        input2.token_pos.clear();
        let mut f2 = Forward::inference(&store);
        let h2 = model.encode(&mut f2, &store, &mut rng, &input2);
        assert_eq!(f2.graph.value(h2).shape(), &[2, 16]);
    }

    #[test]
    fn mlm_and_mer_logit_shapes() {
        let (store, model, mut rng) = tiny_model();
        let mut f = Forward::inference(&store);
        let input = toy_input();
        let h = model.encode(&mut f, &store, &mut rng, &input);
        let mlm = model.mlm_logits(&mut f, &store, h, &[0, 2]);
        assert_eq!(f.graph.value(mlm).shape(), &[2, 50]);
        let mer = model.mer_logits(&mut f, &store, h, &[4], &[0, 5, 9]);
        assert_eq!(f.graph.value(mer).shape(), &[1, 3]);
    }

    #[test]
    fn gradients_reach_embeddings_through_full_stack() {
        let (mut store, model, mut rng) = tiny_model();
        let mut f = Forward::new(&store);
        let input = toy_input();
        let h = model.encode(&mut f, &store, &mut rng, &input);
        let logits = model.mer_logits(&mut f, &store, h, &[4], &[2, 3, 4]);
        let loss = f.graph.cross_entropy(logits, &[1]);
        f.backprop(loss, &mut store);
        for name in ["turl.word_emb.weight", "turl.ent_emb.weight", "turl.fuse.weight"] {
            let id = store.find(name).unwrap();
            assert!(store.grad(id).norm() > 0.0, "no grad for {name}");
        }
    }

    #[test]
    fn entity_init_from_names_averages_word_rows() {
        let (mut store, model, _) = tiny_model();
        let names: Vec<Vec<usize>> = (0..20).map(|i| vec![i % 50, (i + 1) % 50]).collect();
        model.init_entity_embeddings_from_names(&mut store, &names);
        let d = model.d_model();
        let words = store.value(model.word_emb.weight).clone();
        let ents = store.value(model.ent_emb.weight);
        // entity 0 lives at row 1; mean of word rows 0 and 1
        for j in 0..d {
            let expect = (words.data()[j] + words.data()[d + j]) / 2.0;
            assert!((ents.data()[d + j] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn visibility_mask_restricts_entity_context() {
        // entity 1 invisible to entity 0: perturbing entity 1's embedding
        // row must not change entity 0's output.
        let (mut store, model, mut rng) = tiny_model();
        let mut input = toy_input();
        let n = input.seq_len();
        let mut mask = Tensor::full(vec![n, n], -1e9);
        for i in 0..n {
            mask.data_mut()[i * n + i] = 0.0;
        }
        input.mask = Some(mask);
        let run = |store: &ParamStore, rng: &mut StdRng, input: &EncodedInput| {
            let mut f = Forward::inference(store);
            let h = model.encode(&mut f, store, rng, input);
            f.graph.value(h).row(input.entity_row(0)).to_vec()
        };
        let base = run(&store, &mut rng, &input);
        // perturb entity 3's embedding (used by entity cell 0? no, cell 1
        // is masked so uses row 0; perturb a word used only by token 0)
        let wid = store.find("turl.word_emb.weight").unwrap();
        let d = model.d_model();
        for j in 0..d {
            let v = store.value(wid).data()[4 * d + j];
            store.value_mut(wid).data_mut()[4 * d + j] = v + 3.0;
        }
        let after = run(&store, &mut rng, &input);
        for (a, b) in base.iter().zip(after.iter()) {
            assert!((a - b).abs() < 1e-5, "fully masked attention leaked context");
        }
    }
}
