//! Graph-free compiled inference for [`TurlModel`].
//!
//! [`CompiledForward`] is the inference twin of [`TurlModel::encode`]:
//! instead of binding parameters into an autograd [`Graph`] and running
//! one tape op at a time (each allocating its output `Vec` and cloning
//! every bound parameter), it lowers the model's forward plan once per
//! input shape through `turl-audit`'s IR and `turl-exec`'s fusing
//! compiler, then executes the schedule out of a single reused arena —
//! no tape, no gradient bookkeeping, no parameter clones, and zero
//! steady-state heap allocation.
//!
//! The compiled pass is **bit-exact** against `encode` under an
//! inference-mode `Forward` (every fused kernel is reassociation-free;
//! see `turl_tensor::ops`), which the `compiled_parity` test suite
//! asserts down to `f32::to_bits`.
//!
//! [`Graph`]: turl_tensor::Graph

use crate::input::EncodedInput;
use crate::model::TurlModel;
use turl_audit::{lower_model_plan, SourceKind};
use turl_exec::{compile, Arena, CompiledPlan, ExecError, SourceValue};
use turl_nn::{ParamId, ParamStore};
use turl_tensor::Tensor;

/// The input-shape signature a compiled plan is specialized to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlanKey {
    n_tokens: usize,
    n_entities: usize,
    n_mention_tokens: usize,
    masked: bool,
}

/// How one IR source is bound at run time.
enum SourceBind {
    /// A parameter tensor, resolved against the store once at compile.
    Param(ParamId),
    /// The input's additive visibility mask.
    Mask,
    /// The per-input mention-averaging matrix (Eqn. 3), built into a
    /// reused scratch buffer.
    AvgMatrix,
    /// An all-zeros constant (the no-mention-tokens branch).
    Zeros(usize),
}

/// One compiled specialization: the executable plan plus its resolved
/// source bindings.
struct Entry {
    key: PlanKey,
    plan: CompiledPlan,
    binds: Vec<SourceBind>,
}

/// Default [plan-cache](CompiledForward::set_plan_cache_cap) capacity:
/// how many distinct input shapes keep a resident compiled plan.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 64;

/// A reusable compiled-inference context for one model + store pair.
///
/// Create once, call [`encode`](CompiledForward::encode) per input.
/// Plans are compiled lazily per input shape and cached in an LRU
/// bounded at [`DEFAULT_PLAN_CACHE_CAP`] shapes (tunable via
/// [`set_plan_cache_cap`](CompiledForward::set_plan_cache_cap)) — a
/// long-running server fed arbitrary table shapes holds at most `cap`
/// compiled schedules, recompiling on re-entry after eviction. The
/// arena and all index/constant scratch buffers are reused across
/// calls, so the steady state performs no heap allocation beyond the
/// output tensor (use [`encode_into`](CompiledForward::encode_into) to
/// eliminate that one too).
pub struct CompiledForward {
    /// MRU-first: index 0 is the most recently used plan.
    entries: Vec<Entry>,
    plan_cache_cap: usize,
    plan_evictions: u64,
    arena: Arena,
    // Reused per-call binding scratch.
    positions: Vec<usize>,
    entity_ids: Vec<usize>,
    entity_types: Vec<usize>,
    mention_words: Vec<usize>,
    avg_matrix: Vec<f32>,
    zeros: Vec<f32>,
}

impl Default for CompiledForward {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            plan_evictions: 0,
            arena: Arena::default(),
            positions: Vec::new(),
            entity_ids: Vec::new(),
            entity_types: Vec::new(),
            mention_words: Vec::new(),
            avg_matrix: Vec::new(),
            zeros: Vec::new(),
        }
    }
}

impl CompiledForward {
    /// Empty context; plans compile lazily on first use of each shape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct input shapes holding a resident compiled plan.
    pub fn compiled_shapes(&self) -> usize {
        self.entries.len()
    }

    /// Bound the plan cache to `cap` resident shapes (minimum 1),
    /// evicting least-recently-used plans immediately if over the new
    /// cap.
    pub fn set_plan_cache_cap(&mut self, cap: usize) {
        self.plan_cache_cap = cap.max(1);
        while self.entries.len() > self.plan_cache_cap {
            self.entries.pop();
            self.plan_evictions += 1;
        }
        self.publish_cache_metrics();
    }

    /// Configured plan-cache capacity.
    pub fn plan_cache_cap(&self) -> usize {
        self.plan_cache_cap
    }

    /// Total plans evicted from the cache over this context's lifetime.
    pub fn plan_evictions(&self) -> u64 {
        self.plan_evictions
    }

    fn publish_cache_metrics(&self) {
        if turl_obs::metrics_enabled() {
            turl_obs::gauge("compiled.plan_cache_size").set(self.entries.len() as f64);
            turl_obs::gauge("compiled.plan_evictions").set(self.plan_evictions as f64);
        }
    }

    /// The compiled plan for `input`'s shape, compiling it on a miss —
    /// exposed so callers (CLI `infer`, benches) can report schedule
    /// statistics such as arena size and reuse factor.
    pub fn plan_for(
        &mut self,
        model: &TurlModel,
        store: &ParamStore,
        input: &EncodedInput,
    ) -> Result<&CompiledPlan, ExecError> {
        let idx = self.entry_index(model, store, input)?;
        Ok(&self.entries[idx].plan)
    }

    fn entry_index(
        &mut self,
        model: &TurlModel,
        store: &ParamStore,
        input: &EncodedInput,
    ) -> Result<usize, ExecError> {
        if input.token_ids.is_empty() && input.entities.is_empty() {
            return Err(ExecError::Binding(
                "empty input: at least one token or entity cell is required".into(),
            ));
        }
        let key = PlanKey {
            n_tokens: input.token_ids.len(),
            n_entities: input.entities.len(),
            n_mention_tokens: input.entities.iter().map(|e| e.mention.len()).sum(),
            masked: input.mask.is_some(),
        };
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            // LRU move-to-front: the hit becomes the most recent entry.
            self.entries[0..=i].rotate_right(1);
            return Ok(0);
        }

        let mut plan = crate::audit::model_plan(
            &model.cfg,
            model.word_emb.vocab,
            model.n_entities(),
            key.n_tokens,
            key.n_entities,
            key.n_mention_tokens,
            0, // no MLM head: compiled plans are encode-only
            0, // no MER head
            0,
        );
        // The runtime decides masking per input, not per config.
        plan.use_visibility = key.masked;
        let ir = lower_model_plan(&plan)
            .map_err(|e| ExecError::Unsupported(format!("plan does not lower: {e}")))?;
        let compiled = compile(&ir)?;

        // Resolve every source once: parameters by name, runtime-built
        // sources (mask, averaging matrix, zeros) by kind.
        let mut binds = Vec::with_capacity(compiled.sources.len());
        for spec in &compiled.sources {
            let bind = match &spec.kind {
                SourceKind::Table => {
                    Self::param_bind(store, &format!("turl.{}.weight", spec.label))?
                }
                SourceKind::Weight { .. }
                | SourceKind::Bias
                | SourceKind::Gamma
                | SourceKind::Beta => Self::param_bind(store, &format!("turl.{}", spec.label))?,
                SourceKind::Mask => SourceBind::Mask,
                SourceKind::AvgMatrix => SourceBind::AvgMatrix,
                SourceKind::ZeroConst => SourceBind::Zeros(spec.shape.iter().product()),
            };
            binds.push(bind);
        }
        self.entries.insert(0, Entry { key, plan: compiled, binds });
        while self.entries.len() > self.plan_cache_cap {
            self.entries.pop();
            self.plan_evictions += 1;
        }
        self.publish_cache_metrics();
        Ok(0)
    }

    fn param_bind(store: &ParamStore, name: &str) -> Result<SourceBind, ExecError> {
        store
            .find(name)
            .map(SourceBind::Param)
            .ok_or_else(|| ExecError::Binding(format!("parameter '{name}' not in store")))
    }

    /// Run the compiled encoder over `input`, returning contextualized
    /// representations `[n, d_model]` — the graph-free equivalent of
    /// [`TurlModel::encode`] under an inference-mode `Forward`.
    pub fn encode(
        &mut self,
        model: &TurlModel,
        store: &ParamStore,
        input: &EncodedInput,
    ) -> Result<Tensor, ExecError> {
        let idx = self.entry_index(model, store, input)?;
        self.run_entry(idx, model, store, input)?;
        let plan = &self.entries[idx].plan;
        let out = plan.output_in(&self.arena);
        Ok(Tensor::from_vec(plan.output_shape.clone(), out.to_vec()))
    }

    /// Like [`encode`](CompiledForward::encode) but writing into an
    /// existing tensor of the right shape — the zero-allocation steady
    /// state used by the throughput bench.
    pub fn encode_into(
        &mut self,
        model: &TurlModel,
        store: &ParamStore,
        input: &EncodedInput,
        out: &mut Tensor,
    ) -> Result<(), ExecError> {
        let idx = self.entry_index(model, store, input)?;
        self.run_entry(idx, model, store, input)?;
        let plan = &self.entries[idx].plan;
        if out.shape() != plan.output_shape.as_slice() {
            return Err(ExecError::Binding(format!(
                "output tensor shape {:?} != plan output {:?}",
                out.shape(),
                plan.output_shape
            )));
        }
        out.data_mut().copy_from_slice(plan.output_in(&self.arena));
        Ok(())
    }

    /// Graph-free MER scoring head (paper Eqn. 6) over a compiled
    /// encode: gather `rows` of `h`, apply the MER projection, and score
    /// each against the candidate entity embeddings. Runs the same
    /// kernels in the same order as [`TurlModel::mer_logits`] on the
    /// tape, so the logits are bit-exact with the graph head.
    ///
    /// Out-of-range `rows` (≥ the encoded sequence length) or
    /// `candidates` (≥ the entity vocabulary) are typed
    /// [`ExecError::Binding`] errors, never panics — serving code hands
    /// adversarial indices straight in here.
    pub fn mer_logits(
        &self,
        model: &TurlModel,
        store: &ParamStore,
        h: &Tensor,
        rows: &[usize],
        candidates: &[usize],
    ) -> Result<Tensor, ExecError> {
        let n_rows = h.shape().first().copied().unwrap_or(0);
        if rows.is_empty() || candidates.is_empty() {
            return Err(ExecError::Binding(
                "mer_logits needs at least one row and one candidate".into(),
            ));
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= n_rows) {
            return Err(ExecError::Binding(format!(
                "mer row {bad} out of range for {n_rows} encoded rows"
            )));
        }
        // Candidates shift by +1 (embedding row 0 is the entity [MASK]).
        let n_entities = model.n_entities();
        if let Some(&bad) = candidates.iter().find(|&&c| c >= n_entities) {
            return Err(ExecError::Binding(format!(
                "candidate entity {bad} out of range for {n_entities} entities"
            )));
        }
        let sel = h.index_select0(rows);
        let mut proj = turl_tensor::ops::matmul(&sel, store.value(model.mer_proj.weight));
        if let Some(b) = model.mer_proj.bias {
            proj = proj.broadcast_zip(store.value(b), |x, y| x + y).map_err(|e| {
                ExecError::Binding(format!("mer bias does not broadcast over rows: {e}"))
            })?;
        }
        let shifted: Vec<usize> = candidates.iter().map(|&c| c + 1).collect();
        let cand = store.value(model.ent_emb.weight).index_select0(&shifted);
        Ok(turl_tensor::ops::matmul_nt(&proj, &cand))
    }

    fn run_entry(
        &mut self,
        idx: usize,
        model: &TurlModel,
        store: &ParamStore,
        input: &EncodedInput,
    ) -> Result<(), ExecError> {
        // --- gather index lists, reusing scratch buffers --------------
        self.positions.clear();
        self.positions.extend(input.token_pos.iter().map(|&p| p.min(model.cfg.max_position - 1)));
        self.entity_ids.clear();
        self.entity_ids.extend(input.entities.iter().map(|e| e.emb_index));
        self.entity_types.clear();
        self.entity_types.extend(input.entities.iter().map(|e| e.type_idx));
        self.mention_words.clear();
        self.mention_words.extend(input.entities.iter().flat_map(|e| e.mention.iter().copied()));

        let entry = &self.entries[idx];
        let mut gathers: Vec<&[usize]> = Vec::with_capacity(entry.plan.gathers.len());
        for spec in &entry.plan.gathers {
            let indices: &[usize] = match spec.label.as_str() {
                "embed.words" => &input.token_ids,
                "embed.token_types" => &input.token_types,
                "embed.positions" => &self.positions,
                "embed.entities" => &self.entity_ids,
                "embed.mention_words" => &self.mention_words,
                "embed.ent_types" => &self.entity_types,
                other => {
                    return Err(ExecError::Binding(format!(
                        "no runtime index source for gather '{other}'"
                    )))
                }
            };
            gathers.push(indices);
        }

        // --- runtime-built sources ------------------------------------
        // Mention-averaging matrix, exactly as TurlModel::mention_means
        // builds it: row i holds 1/len(mention_i) over its token span.
        let total = self.mention_words.len();
        if total > 0 {
            self.avg_matrix.clear();
            self.avg_matrix.resize(input.entities.len() * total, 0.0);
            let mut off = 0usize;
            for (i, e) in input.entities.iter().enumerate() {
                let inv = 1.0 / e.mention.len().max(1) as f32;
                for _ in 0..e.mention.len() {
                    self.avg_matrix[i * total + off] = inv;
                    off += 1;
                }
            }
        }
        let zeros_needed = entry
            .binds
            .iter()
            .filter_map(|b| match b {
                SourceBind::Zeros(n) => Some(*n),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        if self.zeros.len() < zeros_needed {
            self.zeros.resize(zeros_needed, 0.0);
        }

        let mut sources: Vec<SourceValue> = Vec::with_capacity(entry.binds.len());
        for bind in &entry.binds {
            let value: SourceValue = match bind {
                SourceBind::Param(id) => {
                    let t = store.value(*id);
                    match t.quantized() {
                        // Quantized params (artifact-loaded weights) bind
                        // zero-copy; run() dispatches the q8 kernels.
                        Some(q) => SourceValue::I8Block(q),
                        None => SourceValue::F32(t.data()),
                    }
                }
                SourceBind::Mask => SourceValue::F32(
                    input
                        .mask
                        .as_ref()
                        .ok_or_else(|| {
                            ExecError::Binding(
                                "plan expects a visibility mask, input has none".into(),
                            )
                        })?
                        .data(),
                ),
                SourceBind::AvgMatrix => SourceValue::F32(&self.avg_matrix),
                SourceBind::Zeros(n) => SourceValue::F32(&self.zeros[..*n]),
            };
            sources.push(value);
        }

        entry.plan.run(&mut self.arena, &sources, &gathers)
    }
}

impl TurlModel {
    /// Create a compiled graph-free inference context for this model.
    /// See [`CompiledForward`].
    pub fn compiled(&self) -> CompiledForward {
        CompiledForward::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TurlConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use turl_nn::Forward;

    fn build_input(tokens: usize, ents: usize, masked: bool, seed: u64) -> EncodedInput {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = tokens + ents;
        let mask = masked.then(|| {
            let mut m = Tensor::zeros(vec![n, n]);
            for v in m.data_mut().iter_mut() {
                if rng.gen::<f32>() < 0.3 {
                    *v = -1e9;
                }
            }
            m
        });
        EncodedInput {
            token_ids: (0..tokens).map(|i| (i * 7 + 3) % 50).collect(),
            token_types: (0..tokens).map(|i| i % 2).collect(),
            token_pos: (0..tokens).collect(),
            entities: (0..ents)
                .map(|i| crate::input::EntityInput {
                    emb_index: (i * 3) % 21,
                    mention: vec![(i * 5) % 50; (i % 3) + 1],
                    type_idx: i % 3,
                })
                .collect(),
            mask,
        }
    }

    #[test]
    fn compiled_encode_is_bit_exact_vs_graph() {
        let cfg = TurlConfig::small(4242);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(99);
        let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
        let mut cf = model.compiled();
        for (tokens, ents, masked) in [(6, 3, true), (6, 3, false), (5, 0, false), (0, 4, true)] {
            let input = build_input(tokens, ents, masked, 7);
            let mut f = Forward::inference(&store);
            let h = model.encode(&mut f, &store, &mut rng, &input);
            let want = f.graph.value(h).clone();
            let got = cf.encode(&model, &store, &input).expect("compiled encode");
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.data().iter().zip(want.data().iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "compiled diverged ({tokens},{ents},{masked})"
                );
            }
        }
    }

    #[test]
    fn mer_head_is_bit_exact_vs_graph() {
        let cfg = TurlConfig::small(77);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(77);
        let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
        let input = build_input(5, 3, true, 11);
        let rows = [input.entity_row(0), input.entity_row(2)];
        let candidates = [0usize, 3, 7, 19];

        let mut f = Forward::inference(&store);
        let h = model.encode(&mut f, &store, &mut rng, &input);
        let logits = model.mer_logits(&mut f, &store, h, &rows, &candidates);
        let want = f.graph.value(logits).clone();

        let mut cf = model.compiled();
        let hc = cf.encode(&model, &store, &input).expect("compiled encode");
        let got = cf.mer_logits(&model, &store, &hc, &rows, &candidates).expect("compiled mer");
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "MER head diverged from graph");
        }
    }

    #[test]
    fn plan_cache_reuses_shapes() {
        let cfg = TurlConfig::tiny(1);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let model = TurlModel::new(&mut store, &mut rng, cfg, 50, 20);
        let mut cf = model.compiled();
        let input = build_input(4, 2, true, 1);
        cf.encode(&model, &store, &input).expect("first");
        cf.encode(&model, &store, &input).expect("second");
        assert_eq!(cf.compiled_shapes(), 1, "same shape must not recompile");
        let other = build_input(5, 2, true, 2);
        cf.encode(&model, &store, &other).expect("third");
        assert_eq!(cf.compiled_shapes(), 2);
    }
}
