//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of exactly the API
//! surface it uses: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! the [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range` and
//! `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! Streams differ from the upstream crate, but every consumer in this
//! repository only relies on determinism-per-seed, not on specific values.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution of
/// `Rng::gen` (uniform bits for integers, `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) at full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) at full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty inclusive range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // full-width range: every word is a valid sample
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty inclusive range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty inclusive range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpoint/resume.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild an RNG that continues exactly from a captured state.
        pub fn from_state(state: [u64; 4]) -> Self {
            Self { s: state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let _ = a.gen::<u64>();
        let mut b = StdRng::from_state(a.state());
        for _ in 0..50 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = r.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&j));
            let f = r.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
