//! Derive macros for the offline `serde` stand-in.
//!
//! Generates `Serialize`/`Deserialize` impls (the simplified `Value`-based
//! traits of the vendored `serde` crate) for non-generic structs and enums.
//! Supports named-field structs, tuple structs, and enums with unit, tuple
//! and struct variants, plus the `#[serde(skip)]` field attribute.
//!
//! Implemented directly on `proc_macro::TokenStream` — the offline build
//! has no `syn`/`quote`, so parsing walks raw token trees and code is
//! emitted as strings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// A tiny item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// True when an attribute group's tokens are exactly `serde(skip)`.
fn is_skip_attr(group: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consume leading `#[...]` attributes; report whether any was `serde(skip)`.
fn take_attrs(toks: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos + 1 < toks.len() {
        let (TokenTree::Punct(p), TokenTree::Group(g)) = (&toks[pos], &toks[pos + 1]) else {
            break;
        };
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= is_skip_attr(&g.stream());
        pos += 2;
    }
    (pos, skip)
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn take_vis(toks: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&toks.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(
            &toks.get(pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            pos += 1;
        }
    }
    pos
}

/// Advance past a type, stopping at a top-level `,` (generic angle brackets
/// are depth-tracked; `->` is not a closing bracket).
fn skip_type(toks: &[TokenTree], mut pos: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while pos < toks.len() {
        match &toks[pos] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    return pos;
                }
                if c == '<' {
                    depth += 1;
                }
                if c == '>' && !prev_dash {
                    depth -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        pos += 1;
    }
    pos
}

/// Parse the contents of a named-field brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < toks.len() {
        let (p, skip) = take_attrs(&toks, pos);
        let p = take_vis(&toks, p);
        let TokenTree::Ident(name) = &toks[p] else {
            panic!("serde_derive: expected field name, got {:?}", toks[p].to_string());
        };
        fields.push(Field { name: name.to_string(), skip });
        assert!(
            matches!(&toks[p + 1], TokenTree::Punct(c) if c.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        pos = skip_type(&toks, p + 2);
        if pos < toks.len() {
            pos += 1; // consume the comma
        }
    }
    fields
}

/// Count the fields of a tuple group (top-level commas + 1).
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0usize;
    let mut pos = 0usize;
    while pos < toks.len() {
        let (p, _) = take_attrs(&toks, pos);
        let p = take_vis(&toks, p);
        arity += 1;
        pos = skip_type(&toks, p);
        if pos < toks.len() {
            pos += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < toks.len() {
        let (p, _) = take_attrs(&toks, pos);
        let TokenTree::Ident(name) = &toks[p] else {
            panic!("serde_derive: expected variant name, got {:?}", toks[p].to_string());
        };
        let name = name.to_string();
        let mut p = p + 1;
        let kind = match toks.get(p) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(tuple_arity(g.stream()));
                p += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_named_fields(g.stream()));
                p += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // skip an optional `= discriminant` and the trailing comma
        while p < toks.len()
            && !matches!(&toks[p], TokenTree::Punct(c) if c.as_char() == ',')
        {
            p += 1;
        }
        pos = p + 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (pos, _) = take_attrs(&toks, 0);
    let pos = take_vis(&toks, pos);
    let TokenTree::Ident(kw) = &toks[pos] else {
        panic!("serde_derive: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    let TokenTree::Ident(name) = &toks[pos + 1] else {
        panic!("serde_derive: expected type name after `{kw}`");
    };
    let name = name.to_string();
    if matches!(&toks.get(pos + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline stub");
    }
    let body = &toks[pos + 2];
    match (kw.as_str(), body) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: tuple_arity(g.stream()) }
        }
        ("struct", _) => Item::TupleStruct { name, arity: 0 },
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        _ => panic!("serde_derive: unsupported item `{kw} {name}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn fields_to_obj(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "{ let mut __pairs: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__pairs.push((\"{n}\".to_string(), ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = accessor(&f.name),
        ));
    }
    out.push_str("::serde::Value::Obj(__pairs) }");
    out
}

fn fields_from_obj(
    ty: &str,
    ctor: &str,
    fields: &[Field],
    src: &str,
) -> String {
    let mut out = format!("{ctor} {{\n");
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value({src}.get(\"{n}\").ok_or_else(|| \
                 ::serde::DeError::new(\"missing field `{n}` in {ty}\"))?)?,\n",
                n = f.name,
            ));
        }
    }
    out.push('}');
    out
}

fn emit_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let body = fields_to_obj(fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {body}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ \
                 ::serde::Value::Arr(vec![{}]) }}\n}}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\"\
                             .to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let obj = fields_to_obj(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "Self::{vn} {{ {} }} => ::serde::Value::Obj(vec![(\"{vn}\"\
                             .to_string(), {obj})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{\n{arms}}} }}\n}}"
            )
        }
    }
}

fn emit_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let build = fields_from_obj(name, "Self", fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Obj(_) => ::std::result::Result::Ok({build}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"an object for struct {name}\", __other)),\n\
                 }} }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Arr(__items) if __items.len() == {arity} => \
                 ::std::result::Result::Ok(Self({})),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"an array for tuple struct {name}\", __other)),\n\
                 }} }}\n}}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            keyed_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(\
                                 ::serde::Deserialize::from_value(__val)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            keyed_arms.push_str(&format!(
                                "\"{vn}\" => match __val {{\n\
                                 ::serde::Value::Arr(__items) if __items.len() == {arity} => \
                                 ::std::result::Result::Ok(Self::{vn}({items})),\n\
                                 __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"an array for variant \
                                 {name}::{vn}\", __other)),\n}},\n",
                                items = items.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let build =
                            fields_from_obj(&format!("{name}::{vn}"), &format!("Self::{vn}"), fields, "__val");
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => match __val {{\n\
                             ::serde::Value::Obj(_) => ::std::result::Result::Ok({build}),\n\
                             __other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"an object for variant \
                             {name}::{vn}\", __other)),\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__key, __val) = &__pairs[0];\n\
                 match __key.as_str() {{\n{keyed_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"a variant of {name}\", __other)),\n\
                 }} }}\n}}"
            )
        }
    }
}
