//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal deterministic property-testing harness with the
//! same spelling as proptest: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, [`collection::vec`], [`any`], numeric-range strategies,
//! string strategies from a small regex subset (`[a-z]{1,8}`, `\PC{0,40}`),
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! from the test name (fully deterministic across runs), there is no
//! shrinking, and failing cases report the assertion message only.

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

// ---------------------------------------------------------------------------
// RNG + config
// ---------------------------------------------------------------------------

/// Deterministic RNG used to generate test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded directly from a 64-bit value.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// RNG seeded from a test name (FNV-1a hash), so every named test
    /// has its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; the case is not counted.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------------------
// String strategies from a regex subset
// ---------------------------------------------------------------------------

enum Atom {
    /// Characters listed explicitly (from a `[...]` class).
    Class(Vec<char>),
    /// `\PC`: any non-control character (sampled from a fixed pool that
    /// includes non-ASCII, uppercase and punctuation to exercise unicode
    /// handling).
    NonControl,
    /// A literal character.
    Literal(char),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], mut pos: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while pos < chars.len() && chars[pos] != ']' {
        if pos + 2 < chars.len() && chars[pos + 1] == '-' && chars[pos + 2] != ']' {
            let (lo, hi) = (chars[pos], chars[pos + 2]);
            assert!(lo <= hi, "bad regex class range {lo}-{hi}");
            for c in lo..=hi {
                set.push(c);
            }
            pos += 3;
        } else {
            set.push(chars[pos]);
            pos += 1;
        }
    }
    assert!(pos < chars.len(), "unterminated character class in regex strategy");
    (set, pos + 1)
}

fn parse_quantifier(chars: &[char], pos: usize) -> (usize, usize, usize) {
    if chars.get(pos) != Some(&'{') {
        return (1, 1, pos);
    }
    let close = chars[pos..]
        .iter()
        .position(|&c| c == '}')
        .map(|i| pos + i)
        .expect("unterminated {} quantifier in regex strategy");
    let inner: String = chars[pos + 1..close].iter().collect();
    let (min, max) = match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("bad quantifier lower bound"),
            hi.parse().expect("bad quantifier upper bound"),
        ),
        None => {
            let n = inner.parse().expect("bad quantifier count");
            (n, n)
        }
    };
    (min, max, close + 1)
}

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut pos = 0usize;
    while pos < chars.len() {
        let (atom, next) = match chars[pos] {
            '[' => {
                let (set, next) = parse_class(&chars, pos + 1);
                (Atom::Class(set), next)
            }
            '\\' => match chars.get(pos + 1) {
                Some('P') if chars.get(pos + 2) == Some(&'C') => (Atom::NonControl, pos + 3),
                Some(&c) => (Atom::Literal(c), pos + 2),
                None => panic!("dangling backslash in regex strategy"),
            },
            c => (Atom::Literal(c), pos + 1),
        };
        let (min, max, next) = parse_quantifier(&chars, next);
        atoms.push(Quantified { atom, min, max });
        pos = next;
    }
    atoms
}

/// Sampling pool for `\PC`: printable ASCII plus assorted non-ASCII
/// (accented letters, CJK, symbols) to exercise unicode code paths.
const NON_CONTROL_POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Q', 'Z', '0', '5', '9', ' ', '.', ',', '-', '_', '!', '?', '#', '/',
    '(', ')', '"', '\'', 'é', 'ß', 'Ä', 'ø', 'ñ', '日', '本', '語', '中', 'π', 'Σ', '²', '½',
    '€', '→', '★',
];

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
        Atom::NonControl => NON_CONTROL_POOL[rng.below(NON_CONTROL_POOL.len() as u64) as usize],
        Atom::Literal(c) => *c,
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for q in parse_pattern(self) {
            let count = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(sample_atom(&q.atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable vector-length specifications: an exact length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        /// `(min, max)` inclusive bounds on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test per munch step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(100);
            while __passed < __cfg.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest: too many rejected cases in {} ({} attempts, {} passed)",
                    stringify!($name), __attempts, __passed,
                );
                __attempts += 1;
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), __msg);
                    }
                }
            }
        }
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property test (fails the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), __l, __r
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs), stringify!($rhs), __l
        );
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    #[test]
    fn regex_class_respects_bounds() {
        let mut rng = crate::TestRng::new(1);
        let strat = "[a-z]{1,8}";
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_nc_has_no_controls() {
        let mut rng = crate::TestRng::new(2);
        let strat = "\\PC{0,40}";
        let mut max_len = 0;
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            let n = s.chars().count();
            assert!(n <= 40);
            max_len = max_len.max(n);
            assert!(s.chars().all(|c| !c.is_control()));
        }
        assert!(max_len > 20, "quantifier never stretched: max {max_len}");
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = crate::TestRng::new(3);
        let strat = crate::collection::vec(0usize..10, 2..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..=4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_assumes(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            if flip {
                prop_assert_ne!(x, x + 1);
            }
        }

        #[test]
        fn tuple_strategies_generate(pair in (0usize..4, -1.0f32..1.0)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }
    }
}
