//! Offline stand-in for `serde_json`.
//!
//! Provides the entry points this workspace uses — [`to_string`],
//! [`to_writer`], [`from_str`], [`from_reader`] and [`Error`] — on top of
//! the vendored `serde` crate's [`Value`] data model. The emitted text is
//! valid JSON; the parser accepts standard JSON (objects, arrays, strings
//! with escapes, numbers, booleans, null).

#![deny(missing_docs)]

use std::fmt;
use std::io::{Read, Write};

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type for serialization, deserialization and I/O failures.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::new(format!("io error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Emitting
// ---------------------------------------------------------------------------

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                // JSON has no NaN/inf; mirror serde_json's null behaviour
                out.push_str("null");
            } else if *n == 0.0 && n.is_sign_negative() {
                // `-0.0 as i64` is 0, which would drop the sign bit on
                // roundtrip and break bit-exact checkpoint restores
                out.push_str("-0.0");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => emit_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_str(k, out);
                out.push(':');
                emit_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // surrogate pairs are not produced by our emitter;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 char
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON string into a deserializable value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Read a JSON document from a reader and deserialize it.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(String, Vec<f32>)> =
            vec![("a\"b".to_string(), vec![1.0, -2.5]), ("c\n".to_string(), vec![])];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f32>)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
    }

    #[test]
    fn negative_zero_roundtrips_bit_exactly() {
        assert_eq!(to_string(&-0.0f32).unwrap(), "-0.0");
        let back: f32 = from_str("-0.0").unwrap();
        assert_eq!(back.to_bits(), (-0.0f32).to_bits());
        let pos: f32 = from_str(&to_string(&0.0f32).unwrap()).unwrap();
        assert_eq!(pos.to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let got: Vec<String> = from_str(" [ \"x\\u0041\" , \"\\t\" ] ").unwrap();
        assert_eq!(got, vec!["xA".to_string(), "\t".to_string()]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u64, 2, 3]).unwrap();
        let back: Vec<u64> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
