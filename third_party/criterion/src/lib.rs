//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal benchmark harness with criterion's spelling:
//! [`Criterion`], [`BenchmarkId`], `benchmark_group`/`bench_with_input`/
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark body runs
//! `sample_size` times and the mean wall-clock time is printed. That is
//! enough to keep `cargo bench` compiling, running, and useful for rough
//! comparisons.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the offline stand-in).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function.into(), parameter) }
    }
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `f`, running it `sample_size` times.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(f());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, total_nanos: 0, iters: 0 };
    f(&mut bencher);
    let mean = if bencher.iters == 0 { 0 } else { bencher.total_nanos / bencher.iters as u128 };
    println!("bench {label:<45} {:>12} ns/iter ({} iters)", mean, bencher.iters);
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(
        name = demo_benches;
        config = Criterion::default().sample_size(3);
        targets = bench_demo
    );

    #[test]
    fn harness_runs_all_targets() {
        demo_benches();
    }
}
