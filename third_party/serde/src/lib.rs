//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework with the same spelling as
//! serde: `#[derive(Serialize, Deserialize)]` plus the `serde_json`
//! entry points (`to_string`, `from_str`, `to_writer`, `from_reader`).
//!
//! Instead of serde's visitor architecture, everything routes through a
//! single JSON-like [`Value`] tree: [`Serialize`] renders a value into a
//! `Value`, [`Deserialize`] rebuilds one from it. The derive macros (see
//! `serde_derive`) generate those impls for structs and enums, honouring
//! `#[serde(skip)]` on fields. Representations match serde's defaults:
//! structs are objects, unit enum variants are strings, data-carrying
//! variants are single-key objects.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style dynamically typed value: the interchange data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with preserved insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced while rebuilding a value from its [`Value`] form.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A new deserialization error.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Num(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        };
        Self::new(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into the interchange data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // non-finite floats serialize as null
                    Value::Null => Ok(f64::NAN as $t),
                    other => Err(DeError::expected("a number", other)),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:literal)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("an array of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("an object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = ("x".to_string(), 7u64);
        assert_eq!(<(String, u64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(String::from_value(&Value::Num(1.0)).is_err());
    }
}
