//! Quickstart: the whole TURL pipeline in one small program.
//!
//! 1. Generate a synthetic knowledge base and a Wikipedia-style table
//!    corpus, and run the paper's §5.1 pipeline.
//! 2. Pre-train TURL with the MLM + MER objectives.
//! 3. Inspect what pre-training learned: nearest neighbours in entity-
//!    embedding space and the object-entity prediction probe.
//!
//! Run with `cargo run -p turl-examples --bin quickstart`.

use turl_core::{probe, EncodedInput, Pretrainer, TurlConfig};
use turl_data::{LinearizeConfig, TableInstance, Vocab};
use turl_kb::{
    generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig,
    KnowledgeBase, PipelineConfig, WorldConfig,
};

fn main() {
    // 1. A synthetic world and corpus ------------------------------------
    let kb = KnowledgeBase::generate(&WorldConfig::tiny(1));
    println!(
        "knowledge base: {} entities, {} types, {} relations, {} facts",
        kb.n_entities(),
        kb.schema.types.len(),
        kb.schema.relations.len(),
        kb.facts().len()
    );
    let raw = generate_corpus(&kb, &CorpusConfig { n_tables: 250, ..CorpusConfig::tiny(2) });
    let pcfg = PipelineConfig { max_eval_tables: 30, ..Default::default() };
    let splits = partition(identify_relational(raw, &pcfg), &pcfg);
    println!(
        "corpus after the Section 5.1 pipeline: {} train / {} dev / {} test tables",
        splits.train.len(),
        splits.validation.len(),
        splits.test.len()
    );

    // show one table the way the model sees it
    let sample = &splits.train[0];
    println!("\nsample table: \"{}\"", sample.full_caption());
    println!("  headers: {:?}", sample.headers);
    if let Some(row) = sample.rows.first() {
        let cells: Vec<&str> = row.iter().map(|c| c.text.as_str()).collect();
        println!("  first row: {cells:?}");
    }

    // 2. Pre-train --------------------------------------------------------
    let texts: Vec<String> = splits
        .train
        .iter()
        .flat_map(|t| {
            let mut v = vec![t.full_caption()];
            v.extend(t.headers.clone());
            v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
            v
        })
        .collect();
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
    let cfg = TurlConfig::tiny(3);
    let encode = |tables: &[turl_data::Table]| -> Vec<(TableInstance, EncodedInput)> {
        tables
            .iter()
            .map(|t| {
                let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
                let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
                (inst, enc)
            })
            .collect()
    };
    let data = encode(&splits.train);
    let val = encode(&splits.validation);
    let cooccur = CooccurrenceIndex::build(&splits.train);
    let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    println!("\npre-training ({} tables, {} parameters)...", data.len(), pt.store.num_scalars());
    let acc0 = probe::object_entity_accuracy(
        &pt.model,
        &pt.store,
        &val,
        &cooccur,
        vocab.mask_id() as usize,
        0,
        150,
    );
    let stats = pt.train(&data, &cooccur, 10);
    println!(
        "loss: {:.3} -> {:.3} over {} epochs",
        stats.epoch_losses[0],
        stats.epoch_losses.last().expect("at least one epoch"),
        stats.epoch_losses.len()
    );

    // 3. What did it learn? ------------------------------------------------
    let acc1 = probe::object_entity_accuracy(
        &pt.model,
        &pt.store,
        &val,
        &cooccur,
        vocab.mask_id() as usize,
        0,
        150,
    );
    println!("object-entity prediction probe: {acc0:.3} (random init) -> {acc1:.3} (pre-trained)");

    // The probe above already runs encodes through the compiled forward
    // plan; here it is explicitly — graph-free, fused, one arena buffer,
    // bit-exact with the tape.
    if let Some((_, enc)) = val.first() {
        let mut cf = pt.model.compiled();
        let h = cf.encode(&pt.model, &pt.store, enc).expect("compiled encode");
        println!(
            "\ncompiled inference: encoded a {}-element table to {:?} without building a graph",
            enc.seq_len(),
            h.shape()
        );
    }

    // nearest neighbours of a popular entity in embedding space
    let emb = pt.model.entity_embedding_matrix(&pt.store);
    let d = pt.model.d_model();
    let target = kb.entities_of_type(kb.schema.type_by_name("film").expect("film type"))[0];
    let tv = &emb.data()[(target as usize + 1) * d..(target as usize + 2) * d];
    let mut sims: Vec<(u32, f32)> = (0..kb.n_entities() as u32)
        .filter(|&e| e != target)
        .map(|e| {
            let ev = &emb.data()[(e as usize + 1) * d..(e as usize + 2) * d];
            let dot: f32 = tv.iter().zip(ev).map(|(a, b)| a * b).sum();
            let na: f32 = tv.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = ev.iter().map(|x| x * x).sum::<f32>().sqrt();
            (e, if na * nb > 0.0 { dot / (na * nb) } else { 0.0 })
        })
        .collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!(
        "\nnearest neighbours of \"{}\" ({}):",
        kb.entity(target).name,
        kb.schema.types[kb.entity(target).fine_type].name
    );
    for (e, s) in sims.iter().take(5) {
        println!(
            "  {s:.3}  {} ({})",
            kb.entity(*e).name,
            kb.schema.types[kb.entity(*e).fine_type].name
        );
    }
    println!("\nNext: see table_interpretation.rs and table_augmentation.rs for fine-tuning.");
}
