//! Table augmentation: row population, cell filling and schema
//! augmentation — the §6.5–§6.7 tasks, i.e. the "intelligent assistance
//! while composing a table" scenario from the paper's introduction.
//!
//! Run with `cargo run -p turl-examples --bin table_augmentation`.

use turl_core::tasks::cell_filling::CellFiller;
use turl_core::tasks::clone_pretrained;
use turl_core::tasks::row_population::RowPopulationModel;
use turl_core::tasks::schema_augmentation::SchemaAugModel;
use turl_core::{EncodedInput, FinetuneConfig, Pretrainer, TurlConfig};
use turl_data::{LinearizeConfig, TableInstance, Vocab};
use turl_kb::tasks::{
    build_cell_filling, build_header_vocab, build_row_population, build_schema_augmentation,
};
use turl_kb::{
    generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig,
    KnowledgeBase, PipelineConfig, TableSearchIndex, WorldConfig,
};

fn main() {
    let kb = KnowledgeBase::generate(&WorldConfig::tiny(31));
    let pcfg = PipelineConfig { max_eval_tables: 24, ..Default::default() };
    let splits = partition(
        identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 260, ..CorpusConfig::tiny(32) }),
            &pcfg,
        ),
        &pcfg,
    );
    let texts: Vec<String> = splits
        .train
        .iter()
        .flat_map(|t| {
            let mut v = vec![t.full_caption()];
            v.extend(t.headers.clone());
            v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
            v
        })
        .collect();
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
    let cooccur = CooccurrenceIndex::build(&splits.train);
    let search = TableSearchIndex::build(&splits.train);

    let cfg = TurlConfig::tiny(33);
    let data: Vec<(TableInstance, EncodedInput)> = splits
        .train
        .iter()
        .map(|t| {
            let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
            let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
            (inst, enc)
        })
        .collect();
    let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    println!("pre-training on {} tables ...", data.len());
    pt.train(&data, &cooccur, 8);
    let ft = FinetuneConfig { epochs: 5, ..Default::default() };

    // --- row population -----------------------------------------------------
    let mut rp_train = build_row_population(&splits.train, &search, 0, 4, 10);
    rp_train.extend(build_row_population(&splits.train, &search, 1, 4, 10));
    rp_train.truncate(250);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let mut rp = RowPopulationModel::new(m, s);
    rp.train(&vocab, &kb, &rp_train, &ft);
    let rp_eval = build_row_population(&splits.test, &search, 1, 5, 10);
    let (map, recall) = rp.evaluate(&vocab, &kb, &rp_eval);
    println!(
        "\n[row population]  MAP {:.1} (candidate recall {:.1}%) over {} queries",
        100.0 * map,
        100.0 * recall,
        rp_eval.len()
    );
    if let Some(q) = rp_eval.iter().find(|q| !q.candidates.is_empty()) {
        println!(
            "  query: \"{}\", seed {:?}",
            q.caption,
            q.seeds.iter().map(|&e| kb.entity(e).name.clone()).collect::<Vec<_>>()
        );
        let top: Vec<String> =
            rp.rank(&vocab, &kb, q).iter().take(3).map(|&e| kb.entity(e).name.clone()).collect();
        println!("  suggested next subject entities: {top:?}");
    }

    // --- cell filling --------------------------------------------------------
    let cf_eval = build_cell_filling(&splits.test, &cooccur, 3, true);
    let filler = CellFiller::new(&pt.model, &pt.store);
    let ps = filler.precision_at(&vocab, &kb, &splits.test, &cf_eval, &[1, 3]);
    println!(
        "\n[cell filling]    P@1 {:.1}  P@3 {:.1} over {} instances (no fine-tuning: MER head)",
        100.0 * ps[0],
        100.0 * ps[1],
        cf_eval.len()
    );
    if let Some(ex) = cf_eval.iter().find(|e| e.gold_in_candidates() && e.candidates.len() > 1) {
        let ranked = filler.rank(&vocab, &kb, &splits.test, ex);
        println!(
            "  \"{}\" + header \"{}\" -> predicted \"{}\" (gold \"{}\")",
            kb.entity(ex.subject).name,
            ex.target_header,
            kb.entity(ranked[0]).name,
            kb.entity(ex.gold).name
        );
    }

    // --- schema augmentation --------------------------------------------------
    let headers = build_header_vocab(&splits.train, 2);
    let mut sa_train = build_schema_augmentation(&splits.train, &headers, 0);
    sa_train.extend(build_schema_augmentation(&splits.train, &headers, 1));
    sa_train.truncate(250);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let mut sa = SchemaAugModel::new(m, s, headers.len());
    sa.train(&vocab, &headers, &sa_train, &FinetuneConfig { epochs: 10, ..ft });
    let sa_eval = build_schema_augmentation(&splits.test, &headers, 0);
    println!(
        "\n[schema augment]  MAP {:.1} over {} queries ({} header vocabulary)",
        100.0 * sa.map(&vocab, &headers, &sa_eval),
        sa_eval.len(),
        headers.len()
    );
    if let Some(q) = sa_eval.first() {
        let top: Vec<&str> =
            sa.rank(&vocab, &headers, q).iter().take(4).map(|&h| headers.header(h)).collect();
        let gold: Vec<&str> = q.gold.iter().map(|&h| headers.header(h)).collect();
        println!("  \"{}\" -> suggested headers {top:?} (gold {gold:?})", q.caption);
    }
}
