//! Shared helpers for the TURL examples.
