//! Pre-training ablation probe: a miniature version of Figure 7.
//!
//! Pre-trains three variants — the full model, one without the visibility
//! matrix, and one with an extreme MER mask ratio — and compares the
//! object-entity prediction probe (§6.8) after every epoch.
//!
//! Run with `cargo run -p turl-examples --bin pretrain_and_probe`.

use turl_core::{probe, EncodedInput, PretrainConfig, Pretrainer, TurlConfig};
use turl_data::{LinearizeConfig, TableInstance, Vocab};
use turl_kb::{
    generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig,
    KnowledgeBase, PipelineConfig, WorldConfig,
};

fn main() {
    let kb = KnowledgeBase::generate(&WorldConfig::tiny(41));
    let pcfg = PipelineConfig { max_eval_tables: 30, ..Default::default() };
    let splits = partition(
        identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 220, ..CorpusConfig::tiny(42) }),
            &pcfg,
        ),
        &pcfg,
    );
    let texts: Vec<String> = splits
        .train
        .iter()
        .flat_map(|t| {
            let mut v = vec![t.full_caption()];
            v.extend(t.headers.clone());
            v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
            v
        })
        .collect();
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
    let cooccur = CooccurrenceIndex::build(&splits.train);

    let base = TurlConfig::tiny(43);
    let variants: Vec<(&str, TurlConfig)> = vec![
        ("full model (visibility, MER 0.6)", base),
        ("no visibility matrix", TurlConfig { use_visibility: false, ..base }),
        (
            "MER mask ratio 0.9",
            TurlConfig {
                pretrain: PretrainConfig { mer_select_ratio: 0.9, ..base.pretrain },
                ..base
            },
        ),
    ];

    let epochs = 8;
    println!("object-entity prediction accuracy per pre-training epoch\n");
    print!("{:<34}", "variant");
    for e in 1..=epochs {
        print!(" ep{e:<2}");
    }
    println!();
    for (name, cfg) in variants {
        let encode = |tables: &[turl_data::Table]| -> Vec<(TableInstance, EncodedInput)> {
            tables
                .iter()
                .map(|t| {
                    let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
                    let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
                    (inst, enc)
                })
                .collect()
        };
        let data = encode(&splits.train);
        let val = encode(&splits.validation);
        let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
        print!("{name:<34}");
        for _ in 0..epochs {
            pt.train(&data, &cooccur, 1);
            let acc = probe::object_entity_accuracy(
                &pt.model,
                &pt.store,
                &val,
                &cooccur,
                vocab.mask_id() as usize,
                0,
                120,
            );
            print!(" {:>4.2}", acc);
        }
        println!();
    }
    println!("\nExpected shape (paper Figure 7): the full model dominates the");
    println!("no-visibility variant; extreme mask ratios underperform moderate ones.");
}
