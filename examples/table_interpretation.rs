//! Table interpretation: entity linking, column type annotation and
//! relation extraction on held-out tables — the §6.2–§6.4 tasks.
//!
//! Pre-trains a small TURL model, fine-tunes the three interpretation
//! heads, and then walks through one concrete test table showing what each
//! head predicts.
//!
//! Run with `cargo run -p turl-examples --bin table_interpretation`.

use turl_core::tasks::column_type::ColumnTypeModel;
use turl_core::tasks::entity_linking::{CandidateCatalog, EntityLinkingModel};
use turl_core::tasks::relation_extraction::RelationModel;
use turl_core::tasks::{clone_pretrained, InputChannels};
use turl_core::{EncodedInput, FinetuneConfig, Pretrainer, TurlConfig};
use turl_data::{LinearizeConfig, TableInstance, Vocab};
use turl_kb::tasks::{build_column_type_task, build_entity_linking, build_relation_task};
use turl_kb::{
    generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig,
    KnowledgeBase, LookupIndex, PipelineConfig, WorldConfig,
};

fn main() {
    // world + corpus
    let kb = KnowledgeBase::generate(&WorldConfig::tiny(21));
    let pcfg = PipelineConfig { max_eval_tables: 24, ..Default::default() };
    let splits = partition(
        identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 220, ..CorpusConfig::tiny(22) }),
            &pcfg,
        ),
        &pcfg,
    );
    let texts: Vec<String> = splits
        .train
        .iter()
        .flat_map(|t| {
            let mut v = vec![t.full_caption()];
            v.extend(t.headers.clone());
            v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
            v
        })
        .chain(kb.entities.iter().map(|e| e.description.clone()))
        .collect();
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);

    // pre-train
    let cfg = TurlConfig::tiny(23);
    let data: Vec<(TableInstance, EncodedInput)> = splits
        .train
        .iter()
        .map(|t| {
            let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
            let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
            (inst, enc)
        })
        .collect();
    let cooccur = CooccurrenceIndex::build(&splits.train);
    let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    println!("pre-training on {} tables ...", data.len());
    pt.train(&data, &cooccur, 8);

    let ft = FinetuneConfig { epochs: 5, ..Default::default() };

    // --- entity linking ---------------------------------------------------
    let lookup = LookupIndex::build(&kb);
    let el_train = build_entity_linking(&splits.train, &lookup, 20, true);
    let el_eval = build_entity_linking(&splits.test, &lookup, 20, false);
    let catalog = CandidateCatalog::build(&kb, &vocab);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let mut el = EntityLinkingModel::new(m, s, catalog.n_types, true, true);
    let n = el_train.mentions.len().min(250);
    el.train(&splits.train, &vocab, &catalog, &el_train.mentions[..n], &ft);
    let acc = el.evaluate(&splits.test, &vocab, &catalog, &el_eval.mentions);
    println!(
        "\n[entity linking]      F1 {:.1} (P {:.1} / R {:.1}) over {} mentions",
        100.0 * acc.f1(),
        100.0 * acc.precision(),
        100.0 * acc.recall(),
        el_eval.mentions.len()
    );

    // --- column type annotation -------------------------------------------
    let ct_task =
        build_column_type_task(&kb, &splits.train, &splits.validation, &splits.test, 3, 3);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let mut ct = ColumnTypeModel::new(m, s, ct_task.label_types.len(), InputChannels::full());
    let n = ct_task.train.len().min(250);
    ct.train(&splits.train, &vocab, &ct_task.train[..n], &ft);
    let acc = ct.evaluate(&splits.test, &vocab, &ct_task.test);
    println!(
        "[column types]        F1 {:.1} over {} columns ({} types)",
        100.0 * acc.f1(),
        ct_task.test.len(),
        ct_task.label_types.len()
    );

    // --- relation extraction ----------------------------------------------
    let re_task = build_relation_task(&kb, &splits.train, &splits.validation, &splits.test, 3, 3);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let mut re = RelationModel::new(m, s, re_task.label_relations.len(), InputChannels::full());
    let n = re_task.train.len().min(250);
    re.train(&splits.train, &vocab, &re_task.train[..n], &ft);
    let acc = re.evaluate(&splits.test, &vocab, &re_task.test);
    println!(
        "[relation extraction] F1 {:.1} over {} column pairs ({} relations)",
        100.0 * acc.f1(),
        re_task.test.len(),
        re_task.label_relations.len()
    );

    // --- walk through one table -------------------------------------------
    if let Some(ex) = ct_task.test.first() {
        let t = &splits.test[ex.table_idx];
        println!("\n=== interpreting table \"{}\" ===", t.full_caption());
        println!("headers: {:?}", t.headers);
        let pred = ct.predict(&splits.test, &vocab, ex);
        let names: Vec<&str> = pred.iter().map(|&l| ct_task.label_names[l].as_str()).collect();
        let gold: Vec<&str> = ex.labels.iter().map(|&l| ct_task.label_names[l].as_str()).collect();
        println!("column {} predicted types {:?} (gold {:?})", ex.col, names, gold);
    }
    if let Some(ex) = re_task.test.first() {
        let t = &splits.test[ex.table_idx];
        let scores = re.score(&splits.test, &vocab, ex);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        println!(
            "columns \"{}\" / \"{}\" -> relation {} (gold {:?})",
            t.headers[ex.subj_col],
            t.headers[ex.obj_col],
            re_task.label_names[best],
            ex.labels.iter().map(|&l| re_task.label_names[l].as_str()).collect::<Vec<_>>()
        );
    }
}
