//! End-to-end integration: world generation → §5.1 pipeline →
//! pre-training → checkpointing → fine-tuning, across all crates.

use turl_core::{probe, EncodedInput, Pretrainer, TurlConfig};
use turl_data::{LinearizeConfig, TableInstance, Vocab};
use turl_kb::{
    generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig, CorpusSplits,
    KnowledgeBase, PipelineConfig, WorldConfig,
};
use turl_nn::{load_store, save_store, Forward};

struct World {
    kb: KnowledgeBase,
    splits: CorpusSplits,
    vocab: Vocab,
    cooccur: CooccurrenceIndex,
}

fn world(seed: u64) -> World {
    let kb = KnowledgeBase::generate(&WorldConfig::tiny(seed));
    let pcfg = PipelineConfig { max_eval_tables: 20, ..Default::default() };
    let splits = partition(
        identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 150, ..CorpusConfig::tiny(seed + 1) }),
            &pcfg,
        ),
        &pcfg,
    );
    let texts: Vec<String> = splits
        .train
        .iter()
        .flat_map(|t| {
            let mut v = vec![t.full_caption()];
            v.extend(t.headers.clone());
            v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
            v
        })
        .collect();
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
    let cooccur = CooccurrenceIndex::build(&splits.train);
    World { kb, splits, vocab, cooccur }
}

fn encode(
    w: &World,
    tables: &[turl_data::Table],
    cfg: &TurlConfig,
) -> Vec<(TableInstance, EncodedInput)> {
    tables
        .iter()
        .map(|t| {
            let inst = TableInstance::from_table(t, &w.vocab, &LinearizeConfig::default());
            let enc = EncodedInput::from_instance(&inst, &w.vocab, cfg.use_visibility);
            (inst, enc)
        })
        .collect()
}

#[test]
fn pretraining_is_deterministic_given_seed() {
    let w = world(100);
    let cfg = TurlConfig::tiny(5);
    let data = encode(&w, &w.splits.train[..20.min(w.splits.train.len())], &cfg);
    let run = || {
        let mut pt =
            Pretrainer::new(cfg, w.vocab.len(), w.kb.n_entities(), w.vocab.mask_id() as usize);
        pt.train(&data, &w.cooccur, 2);
        let id = pt.store.find("turl.ent_emb.weight").unwrap();
        pt.store.value(id).data().to_vec()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give bit-identical training");
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let w = world(200);
    let cfg = TurlConfig::tiny(6);
    let data = encode(&w, &w.splits.train[..20.min(w.splits.train.len())], &cfg);
    let mut pt = Pretrainer::new(cfg, w.vocab.len(), w.kb.n_entities(), w.vocab.mask_id() as usize);
    pt.train(&data, &w.cooccur, 2);

    let dir = std::env::temp_dir().join("turl_integration_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    save_store(&pt.store, &path).unwrap();
    let loaded = load_store(&path).unwrap();

    let mut pt2 =
        Pretrainer::new(cfg, w.vocab.len(), w.kb.n_entities(), w.vocab.mask_id() as usize);
    let copied = pt2.store.load_matching(&loaded);
    assert_eq!(copied, pt2.store.len(), "all parameters must be restored");

    // identical representation for the same input
    let (_, enc) = &data[0];
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
    let mut f1 = Forward::inference(&pt.store);
    let h1 = pt.model.encode(&mut f1, &pt.store, &mut rng, enc);
    let mut rng2: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
    let mut f2 = Forward::inference(&pt2.store);
    let h2 = pt2.model.encode(&mut f2, &pt2.store, &mut rng2, enc);
    let v1 = f1.graph.value(h1);
    let v2 = f2.graph.value(h2);
    for (a, b) in v1.data().iter().zip(v2.data().iter()) {
        assert!((a - b).abs() < 1e-6);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pretraining_improves_object_entity_probe() {
    let w = world(300);
    let cfg = TurlConfig::tiny(7);
    let train = encode(&w, &w.splits.train, &cfg);
    let val = encode(&w, &w.splits.validation, &cfg);
    let mut pt = Pretrainer::new(cfg, w.vocab.len(), w.kb.n_entities(), w.vocab.mask_id() as usize);
    let mask = w.vocab.mask_id() as usize;
    let before =
        probe::object_entity_accuracy(&pt.model, &pt.store, &val, &w.cooccur, mask, 0, 100);
    pt.train(&train, &w.cooccur, 8);
    let after = probe::object_entity_accuracy(&pt.model, &pt.store, &val, &w.cooccur, mask, 0, 100);
    assert!(
        after > before + 0.02,
        "pre-training must improve the probe: {before:.3} -> {after:.3}"
    );
}

#[test]
fn no_table_leaks_between_splits() {
    let w = world(400);
    let ids = |ts: &[turl_data::Table]| {
        ts.iter().map(|t| t.id.clone()).collect::<std::collections::HashSet<_>>()
    };
    let train = ids(&w.splits.train);
    let val = ids(&w.splits.validation);
    let test = ids(&w.splits.test);
    assert!(train.is_disjoint(&val));
    assert!(train.is_disjoint(&test));
    assert!(val.is_disjoint(&test));
}

#[test]
fn visibility_variant_changes_representations_but_not_interface() {
    let w = world(500);
    let cfg_vis = TurlConfig::tiny(8);
    let cfg_novis = TurlConfig { use_visibility: false, ..cfg_vis };
    let with_v = encode(&w, &w.splits.train[..1], &cfg_vis);
    let without_v = encode(&w, &w.splits.train[..1], &cfg_novis);
    assert!(with_v[0].1.mask.is_some());
    assert!(without_v[0].1.mask.is_none());
    let pt = Pretrainer::new(cfg_vis, w.vocab.len(), w.kb.n_entities(), w.vocab.mask_id() as usize);
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
    let mut f = Forward::inference(&pt.store);
    let h1 = pt.model.encode(&mut f, &pt.store, &mut rng, &with_v[0].1);
    let mut rng2: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(0);
    let mut f2 = Forward::inference(&pt.store);
    let h2 = pt.model.encode(&mut f2, &pt.store, &mut rng2, &without_v[0].1);
    assert_eq!(f.graph.value(h1).shape(), f2.graph.value(h2).shape());
    // the visibility mask must actually change the computation
    let diff: f32 = f
        .graph
        .value(h1)
        .data()
        .iter()
        .zip(f2.graph.value(h2).data().iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(diff > 1e-3, "visibility matrix had no effect");
}
