//! Cross-crate integration for the six TUBE tasks: dataset builders from
//! `turl-kb`, heads from `turl-core`, baselines from `turl-baselines`,
//! all over one shared world.

use turl_baselines::{rank_exact, rank_h2h, EntiTables, KnnSchema, SkipGramConfig, Table2Vec};
use turl_core::tasks::cell_filling::CellFiller;
use turl_core::tasks::clone_pretrained;
use turl_core::tasks::row_population::RowPopulationModel;
use turl_core::{EncodedInput, FinetuneConfig, Pretrainer, TurlConfig};
use turl_data::{LinearizeConfig, TableInstance, Vocab};
use turl_kb::tasks::metrics::{average_precision, mean_average_precision};
use turl_kb::tasks::{
    build_cell_filling, build_header_vocab, build_row_population, build_schema_augmentation,
};
use turl_kb::{
    generate_corpus, identify_relational, partition, CooccurrenceIndex, CorpusConfig, CorpusSplits,
    KnowledgeBase, PipelineConfig, TableSearchIndex, WorldConfig,
};

fn setup() -> (KnowledgeBase, CorpusSplits, Vocab, CooccurrenceIndex, TableSearchIndex) {
    let kb = KnowledgeBase::generate(&WorldConfig::tiny(600));
    let pcfg = PipelineConfig { max_eval_tables: 30, ..Default::default() };
    let splits = partition(
        identify_relational(
            generate_corpus(&kb, &CorpusConfig { n_tables: 260, ..CorpusConfig::tiny(601) }),
            &pcfg,
        ),
        &pcfg,
    );
    let texts: Vec<String> = splits
        .train
        .iter()
        .flat_map(|t| {
            let mut v = vec![t.full_caption()];
            v.extend(t.headers.clone());
            v.extend(t.rows.iter().flatten().map(|c| c.text.clone()));
            v
        })
        .collect();
    let vocab = Vocab::build(texts.iter().map(String::as_str), 1);
    let cooccur = CooccurrenceIndex::build(&splits.train);
    let search = TableSearchIndex::build(&splits.train);
    (kb, splits, vocab, cooccur, search)
}

#[test]
fn row_population_methods_share_candidates_and_produce_permutations() {
    let (kb, splits, vocab, cooccur, search) = setup();
    let eval = build_row_population(&splits.test, &search, 1, 5, 10);
    assert!(!eval.is_empty());

    let entitables = EntiTables::build(&splits.train);
    let t2v = Table2Vec::train(
        &splits.train,
        &SkipGramConfig { dim: 16, epochs: 2, ..Default::default() },
    );
    let cfg = TurlConfig::tiny(602);
    let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let turl = RowPopulationModel::new(m, s);

    for ex in eval.iter().take(5) {
        let a = entitables.rank(&ex.caption, &ex.seeds, &ex.candidates);
        let b = t2v.rank(&ex.seeds, &ex.candidates);
        let c = turl.rank(&vocab, &kb, ex);
        for ranked in [&a, &b, &c] {
            let mut sorted = (*ranked).clone();
            sorted.sort_unstable();
            let mut cands = ex.candidates.clone();
            cands.sort_unstable();
            assert_eq!(sorted, cands, "each method must rank exactly the shared candidates");
        }
    }
    let _ = cooccur;
}

#[test]
fn cell_filling_turl_and_baselines_agree_on_protocol() {
    let (kb, splits, vocab, cooccur, _) = setup();
    let eval = build_cell_filling(&splits.test, &cooccur, 3, true);
    assert!(!eval.is_empty());
    let cfg = TurlConfig::tiny(603);
    let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    let filler = CellFiller::new(&pt.model, &pt.store);
    let with_gold: Vec<_> = eval.iter().filter(|e| e.gold_in_candidates()).take(10).collect();
    for ex in with_gold {
        let exact = rank_exact(ex);
        let h2h = rank_h2h(ex, &cooccur);
        let turl = filler.rank(&vocab, &kb, &splits.test, ex);
        assert_eq!(exact.len(), ex.candidates.len());
        assert_eq!(h2h.len(), ex.candidates.len());
        assert_eq!(turl.len(), ex.candidates.len());
    }
}

#[test]
fn schema_augmentation_knn_and_turl_rank_same_space() {
    let (kb, splits, vocab, _, search) = setup();
    let headers = build_header_vocab(&splits.train, 2);
    let eval = build_schema_augmentation(&splits.test, &headers, 1);
    assert!(!eval.is_empty());
    let knn = KnnSchema::new(&search, 10);
    let cfg = TurlConfig::tiny(604);
    let pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), &pt.store);
    let mut turl = turl_core::tasks::schema_augmentation::SchemaAugModel::new(m, s, headers.len());
    let train_ex = build_schema_augmentation(&splits.train, &headers, 1);
    turl.train(
        &vocab,
        &headers,
        &train_ex[..60.min(train_ex.len())],
        &FinetuneConfig { epochs: 3, ..Default::default() },
    );
    for ex in eval.iter().take(5) {
        let knn_ranked = knn.rank(&headers, ex).ranked;
        let turl_ranked = turl.rank(&vocab, &headers, ex);
        for &h in knn_ranked.iter().chain(turl_ranked.iter()) {
            assert!(h < headers.len());
            assert!(!ex.seeds.contains(&h), "seeds must not be re-recommended");
        }
        // TURL ranks the full vocabulary (minus seeds)
        assert_eq!(turl_ranked.len(), headers.len() - ex.seeds.len());
    }
}

#[test]
fn fine_tuning_from_pretrained_beats_from_scratch_on_row_population() {
    let (kb, splits, vocab, cooccur, search) = setup();
    let cfg = TurlConfig::tiny(605);
    let data: Vec<(TableInstance, EncodedInput)> = splits
        .train
        .iter()
        .map(|t| {
            let inst = TableInstance::from_table(t, &vocab, &LinearizeConfig::default());
            let enc = EncodedInput::from_instance(&inst, &vocab, cfg.use_visibility);
            (inst, enc)
        })
        .collect();
    let mut pt = Pretrainer::new(cfg, vocab.len(), kb.n_entities(), vocab.mask_id() as usize);
    pt.train(&data, &cooccur, 6);

    let mut train_ex = build_row_population(&splits.train, &search, 1, 4, 10);
    train_ex.truncate(60);
    let eval = build_row_population(&splits.test, &search, 1, 5, 10);
    let ft = FinetuneConfig { epochs: 3, ..Default::default() };

    let run = |init_store: &turl_nn::ParamStore| {
        let (m, s) = clone_pretrained(cfg, vocab.len(), kb.n_entities(), init_store);
        let mut rp = RowPopulationModel::new(m, s);
        rp.train(&vocab, &kb, &train_ex, &ft);
        let aps: Vec<f64> =
            eval.iter().map(|ex| average_precision(&rp.rank(&vocab, &kb, ex), &ex.gold)).collect();
        mean_average_precision(&aps)
    };
    let scratch_store = Pretrainer::new(
        TurlConfig::tiny(606),
        vocab.len(),
        kb.n_entities(),
        vocab.mask_id() as usize,
    )
    .store;
    let map_scratch = run(&scratch_store);
    let map_pretrained = run(&pt.store);
    // at tiny scale this comparison is noisy; the quick-scale Table 8
    // experiment measures the real effect — here we only guard against
    // pre-training being catastrophically harmful
    assert!(
        map_pretrained > map_scratch - 0.05,
        "pre-training should not hurt: scratch {map_scratch:.3} vs pre-trained {map_pretrained:.3}"
    );
}
