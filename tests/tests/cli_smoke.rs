//! Smoke tests for the `turl` CLI binary: every subcommand runs end-to-end
//! on a miniature world and produces the expected artifacts.

use std::process::Command;

// The CLI lives in a separate crate; invoke it through cargo instead of
// CARGO_BIN_EXE (which only works for bins of the same package).
fn run_turl(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "turl-cli", "--"])
        .args(args)
        .output()
        .expect("cargo run turl-cli");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn cli_world_and_corpus_and_pipeline_roundtrip() {
    let (ok, text) = run_turl(&["world", "--entities", "300", "--seed", "3"]);
    assert!(ok, "world failed: {text}");
    assert!(text.contains("relations"), "{text}");

    let dir = std::env::temp_dir().join("turl_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.json");
    let (ok, text) = run_turl(&[
        "corpus",
        "--entities",
        "300",
        "--tables",
        "80",
        "--seed",
        "3",
        "--out",
        corpus.to_str().unwrap(),
    ]);
    assert!(ok, "corpus failed: {text}");
    assert!(corpus.exists());

    let ckpt = dir.join("model.json");
    let (ok, text) = run_turl(&[
        "pretrain",
        "--entities",
        "300",
        "--tables",
        "80",
        "--epochs",
        "1",
        "--seed",
        "3",
        "--out",
        ckpt.to_str().unwrap(),
    ]);
    assert!(ok, "pretrain failed: {text}");
    assert!(ckpt.exists());

    // crash-safe checkpointing: a run interrupted after 1 epoch and
    // resumed to 2 total epochs matches an uninterrupted 2-epoch run
    // bit-for-bit (the `final loss ... bits 0x...` line is the witness)
    let ckdir = dir.join("ckpts");
    std::fs::remove_dir_all(&ckdir).ok();
    let common = ["--entities", "300", "--tables", "80", "--seed", "3"];
    let bits_of = |text: &str| {
        text.lines()
            .find_map(|l| l.split("bits ").nth(1))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no `bits` line in: {text}"))
    };
    let (ok, reference) = run_turl(
        &[&["pretrain", "--epochs", "2", "--out", ckpt.to_str().unwrap()], &common[..]].concat(),
    );
    assert!(ok, "reference pretrain failed: {reference}");
    let (ok, text) = run_turl(
        &[
            &[
                "pretrain",
                "--epochs",
                "1",
                "--checkpoint-dir",
                ckdir.to_str().unwrap(),
                "--checkpoint-every",
                "5",
                "--out",
                ckpt.to_str().unwrap(),
            ],
            &common[..],
        ]
        .concat(),
    );
    assert!(ok, "interrupted pretrain failed: {text}");
    let (ok, text) = run_turl(
        &[
            &[
                "pretrain",
                "--epochs",
                "2",
                "--checkpoint-dir",
                ckdir.to_str().unwrap(),
                "--resume",
                "--out",
                ckpt.to_str().unwrap(),
            ],
            &common[..],
        ]
        .concat(),
    );
    assert!(ok, "resumed pretrain failed: {text}");
    assert!(text.contains("resumed from"), "{text}");
    assert_eq!(bits_of(&reference), bits_of(&text), "resume diverged from reference");
    std::fs::remove_dir_all(&ckdir).ok();

    // probe can reuse the checkpoint without re-training
    let (ok, text) = run_turl(&[
        "probe",
        "--entities",
        "300",
        "--tables",
        "80",
        "--seed",
        "3",
        "--ckpt",
        ckpt.to_str().unwrap(),
    ]);
    assert!(ok, "probe failed: {text}");
    assert!(text.contains("accuracy"), "{text}");

    std::fs::remove_file(&corpus).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn cli_metrics_out_and_report_roundtrip() {
    let dir = std::env::temp_dir().join("turl_cli_smoke_obs");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    let ckpt = dir.join("model.json");
    let (ok, text) = run_turl(&[
        "pretrain",
        "--entities",
        "200",
        "--tables",
        "40",
        "--epochs",
        "1",
        "--seed",
        "5",
        "--metrics-out",
        jsonl.to_str().unwrap(),
        "--out",
        ckpt.to_str().unwrap(),
    ]);
    assert!(ok, "instrumented pretrain failed: {text}");
    assert!(text.contains("final loss"), "{text}");
    assert!(jsonl.exists(), "no metrics file written");

    let (ok, text) = run_turl(&["report", jsonl.to_str().unwrap()]);
    assert!(ok, "report failed: {text}");
    assert!(text.contains("step-time breakdown"), "{text}");
    assert!(text.contains("mask-selection ratios"), "{text}");

    // a stream of valid-looking garbage must be rejected, not rendered
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"ev\":\"step\"}\n").unwrap();
    let (ok, text) = run_turl(&["report", bad.to_str().unwrap()]);
    assert!(!ok, "report accepted a schema-invalid stream: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_arguments() {
    let (ok, text) = run_turl(&["world", "--entities", "many"]);
    assert!(!ok);
    assert!(text.contains("integer"), "{text}");
    let (ok, _) = run_turl(&["no-such-command"]);
    assert!(!ok);
}
