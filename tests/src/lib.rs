//! Integration-test crate; see `tests/` targets.
