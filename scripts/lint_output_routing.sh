#!/usr/bin/env bash
# Output-routing lint: all human-facing output must flow through the
# turl-obs sink layer so that CLI runs stay machine-parseable and
# instrumentation cannot diverge from what the user sees. Direct
# `println!` / `eprintln!` calls are therefore banned everywhere except:
#
#   * crates/obs/           — the sink layer itself (ConsoleSink et al.)
#   * crates/cli/src/main.rs — pre-sink argv/usage errors, before any
#                              sink is installed
#   * crates/bench/src/bin/ — experiment binaries that print TSV tables
#                              for scripts/fill_experiments.py
#
# Exits non-zero listing every violation, for the CI `check` job.
set -euo pipefail
cd "$(dirname "$0")/.."

violations=$(grep -rnE '\b(println|eprintln)!' crates/ --include='*.rs' \
  | grep -vE '^crates/obs/' \
  | grep -vE '^crates/cli/src/main\.rs:' \
  | grep -vE '^crates/bench/src/bin/' \
  || true)

if [ -n "$violations" ]; then
  {
    echo "error: direct println!/eprintln! outside the allowlist —"
    echo "route output through turl_obs::info/warn instead:"
    echo "$violations"
  } >&2
  exit 1
fi
echo "output routing: ok — no stray println!/eprintln! outside crates/obs"
