#!/usr/bin/env bash
# CI gate for crash-safe checkpointing: kill a `turl pretrain` run
# mid-flight with SIGKILL, resume it from its checkpoint directory, and
# require the final loss to be bit-identical to an uninterrupted
# reference run (compared via the `final loss ... bits 0x...` line).
#
# Usage: scripts/ci_resume_parity.sh [path-to-turl-binary]
set -euo pipefail

TURL="${1:-./target/release/turl}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

ARGS=(--entities 120 --tables 60 --epochs 3 --seed 11)

bits() { grep -o 'bits 0x[0-9a-f]*' "$1" | tail -n1; }

echo "== reference run (uninterrupted) =="
"$TURL" pretrain "${ARGS[@]}" --out "$WORK/ref.json" | tee "$WORK/ref.log"
REF_BITS="$(bits "$WORK/ref.log")"
[ -n "$REF_BITS" ] || { echo "reference run printed no bits line"; exit 1; }

echo "== interrupted run (SIGKILL after first checkpoint) =="
"$TURL" pretrain "${ARGS[@]}" \
  --checkpoint-dir "$WORK/ckpts" --checkpoint-every 2 --checkpoint-keep 3 \
  --out "$WORK/killed.json" > "$WORK/killed.log" 2>&1 &
PID=$!
# wait for the first checkpoint file to land, then kill -9 mid-run
for _ in $(seq 1 300); do
  if compgen -G "$WORK/ckpts/ckpt-*.json" > /dev/null; then break; fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -9 "$PID" 2>/dev/null; then
  echo "killed pid $PID mid-run"
  wait "$PID" 2>/dev/null || true
else
  # the short run finished before we could kill it — resume must then be
  # a no-op continuation, which the parity check below still validates
  echo "run finished before kill; continuing with completed checkpoints"
  wait "$PID" 2>/dev/null || true
fi
ls "$WORK/ckpts"

echo "== resumed run =="
"$TURL" pretrain "${ARGS[@]}" \
  --checkpoint-dir "$WORK/ckpts" --resume \
  --out "$WORK/resumed.json" | tee "$WORK/resumed.log"
RES_BITS="$(bits "$WORK/resumed.log")"

echo "reference: $REF_BITS"
echo "resumed:   $RES_BITS"
if [ "$REF_BITS" != "$RES_BITS" ]; then
  echo "FAIL: resumed run diverged from uninterrupted reference"
  exit 1
fi
echo "PASS: resume is bit-identical to the uninterrupted run"
