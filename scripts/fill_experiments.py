#!/usr/bin/env python3
"""Fill EXPERIMENTS.md's MEASURED_* placeholders with fenced excerpts from
quick_results.log (the output of the exp_* suite)."""
import re
import sys

LOG = "quick_results.log"
MD = "EXPERIMENTS.md"

SECTIONS = {
    "MEASURED_TABLE3": "exp_table3",
    "MEASURED_TABLE4": "exp_table4",
    "MEASURED_TABLE5": "exp_table5",
    "MEASURED_TABLE6": "exp_table6",
    "MEASURED_TABLE7": "exp_table7",
    "MEASURED_FIG6": "exp_fig6",
    "MEASURED_TABLE8": "exp_table8",
    "MEASURED_TABLE9": "exp_table9",
    "MEASURED_TABLE10": "exp_table10",
    "MEASURED_TABLE11": "exp_table11",
    "MEASURED_FIG7A": "exp_fig7a",
    "MEASURED_FIG7B": "exp_fig7b",
    "MEASURED_ABL_CAND": "exp_ablate_candidates",
    "MEASURED_ABL_MENT": "exp_ablate_mention",
    "MEASURED_EXT_KB": "exp_ext_kb",
}


def extract(log: str, binary: str) -> str:
    pat = re.compile(
        r"^######## " + re.escape(binary) + r" ########$(.*?)^\[" + re.escape(binary),
        re.S | re.M,
    )
    m = pat.search(log)
    if not m:
        return "(run the suite to populate)"
    body = m.group(1)
    lines = [
        l.rstrip()
        for l in body.splitlines()
        if l.strip()
        and not l.startswith("+ ")
        and not l.startswith("[pretrain")
        and not l.startswith("[cache]")
        and not l.startswith("warning")
    ]
    return "\n```text\n" + "\n".join(lines) + "\n```\n"


def main() -> int:
    log = open(LOG).read()
    md = open(MD).read()
    for placeholder, binary in SECTIONS.items():
        md = md.replace(placeholder, extract(log, binary))
    open(MD, "w").write(md)
    print("EXPERIMENTS.md filled from", LOG)
    return 0


if __name__ == "__main__":
    sys.exit(main())
