#!/usr/bin/env bash
# Storage-boundary lint: the DType/Storage split lives entirely inside
# `crates/tensor`. Outside that crate, code must go through the typed
# accessors (`data()`, `dtype()`, `quantized()`, `quantize_i8()`,
# `dequantize()`) so that adding a dtype is a one-crate change. Two
# families of leakage are banned elsewhere:
#
#   * `Storage::` variant matching — dtype dispatch belongs to the
#     tensor crate's kernels, not to callers.
#   * raw quantized-part access (`.scales()` / `.quants()` /
#     `QuantBlocks::from_parts`) — only the artifact wire format
#     (crates/nn/src/artifact.rs) and the arena executor's typed
#     source views (crates/exec/src/run.rs) may touch block internals.
#
# Exits non-zero listing every violation, for the CI `check` job.
set -euo pipefail
cd "$(dirname "$0")/.."

storage_violations=$(grep -rnE '\bStorage::' crates/ --include='*.rs' \
  | grep -vE '^crates/tensor/' \
  || true)

quant_violations=$(grep -rnE '\.scales\(\)|\.quants\(\)|QuantBlocks::from_parts' \
    crates/ --include='*.rs' \
  | grep -vE '^crates/tensor/' \
  | grep -vE '^crates/nn/src/artifact\.rs:' \
  | grep -vE '^crates/exec/src/run\.rs:' \
  || true)

status=0
if [ -n "$storage_violations" ]; then
  {
    echo "error: Storage variant access outside crates/tensor —"
    echo "use Tensor accessors (data()/dtype()/quantized()) instead:"
    echo "$storage_violations"
  } >&2
  status=1
fi
if [ -n "$quant_violations" ]; then
  {
    echo "error: raw quantized-block access outside the allowlist —"
    echo "only the artifact format and arena executor may touch block parts:"
    echo "$quant_violations"
  } >&2
  status=1
fi
if [ "$status" -ne 0 ]; then
  exit "$status"
fi
echo "storage boundary: ok — dtype internals stay inside crates/tensor"
