#!/usr/bin/env bash
# CI gate for the serving daemon: pre-train a tiny model, export it as
# an artifact, start `turl serve` in the background, hammer it with
# concurrent parity-checked requests via `turl client`, assert the
# /metrics.json snapshot is sane, validate the Prometheus /metrics
# exposition (per-stage histograms live, build info present), then
# SIGTERM the daemon and require a clean drain (no dropped in-flight
# requests, exit code 0), a --trace-out JSONL that `turl report` can
# digest, and a second --no-trace daemon whose responses stay
# bit-identical to the same local forward (tracing on/off parity).
#
# Usage: scripts/ci_serve_smoke.sh [path-to-turl-binary]
set -euo pipefail

TURL="${1:-./target/release/turl}"
WORK="$(mktemp -d)"
ADDR="127.0.0.1:7641"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

ARGS=(--entities 120 --tables 60 --seed 11)

echo "== pretrain + export =="
"$TURL" pretrain "${ARGS[@]}" --epochs 1 --out "$WORK/model.json"
"$TURL" export "${ARGS[@]}" --ckpt "$WORK/model.json" \
  --out "$WORK/model.artifact" --dtype int8

echo "== start daemon =="
"$TURL" serve "${ARGS[@]}" --artifact "$WORK/model.artifact" \
  --addr "$ADDR" --workers 2 --conns 4 --max-batch 4 --max-wait-us 2000 \
  --trace-out "$WORK/traces.jsonl" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 600); do
  grep -q 'listening on' "$WORK/serve.log" && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done
grep -q 'listening on' "$WORK/serve.log" || { cat "$WORK/serve.log"; exit 1; }

echo "== concurrent parity-checked load =="
"$TURL" client "${ARGS[@]}" --addr "$ADDR" --requests 32 --concurrency 4 \
  --check-parity --artifact "$WORK/model.artifact" | tee "$WORK/client.log"
grep -q 'bit-identical to the local forward' "$WORK/client.log"
grep -q 'connection reuse:' "$WORK/client.log"

echo "== /metrics.json sanity =="
METRICS="$(curl -sf "http://$ADDR/metrics.json")" \
  || METRICS="$(python3 - "$ADDR" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(f"http://{sys.argv[1]}/metrics.json").read().decode())
EOF
)"
METRICS="$METRICS" python3 <<'EOF'
import json, os
m = json.loads(os.environ["METRICS"])
assert m["requests"] >= 32, "expected >=32 requests, saw %s" % m["requests"]
assert m["server_errors"] == 0, "server errors: %s" % m["server_errors"]
assert m["rejected_overload"] == 0, "unexpected overload rejects"
assert m["batches"] >= 1 and m["batch_occupancy"] >= 1.0, "no forwards recorded"
assert m["plan_cache_size"] >= 1, "no compiled plan resident"
assert m["traces_sampled"] >= 32, "tracing is on, every task request must be sampled"
print("metrics ok: %d requests, occupancy %.2f, hit rate %.2f, %d traces"
      % (m["requests"], m["batch_occupancy"], m["cache_hit_rate"], m["traces_sampled"]))
EOF

echo "== /metrics is valid Prometheus exposition =="
PROM="$(curl -sf "http://$ADDR/metrics")" \
  || PROM="$(python3 - "$ADDR" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(f"http://{sys.argv[1]}/metrics").read().decode())
EOF
)"
PROM="$PROM" python3 <<'EOF'
import os, re
text = os.environ["PROM"]
name_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*$')
line_re = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$')
samples = {}
types = {}
for i, line in enumerate(text.splitlines(), 1):
    if not line.strip():
        continue
    if line.startswith("#"):
        parts = line.split()
        if len(parts) >= 4 and parts[1] == "TYPE":
            assert name_re.match(parts[2]), f"line {i}: bad family name {parts[2]}"
            assert parts[3] in ("counter", "gauge", "histogram", "summary", "untyped"), \
                f"line {i}: bad type {parts[3]}"
            types[parts[2]] = parts[3]
        continue
    m = line_re.match(line)
    assert m, f"line {i}: not a valid exposition sample: {line!r}"
    samples[m.group(1) + (m.group(2) or "")] = m.group(3)
assert types.get("serve_latency_us") == "histogram", "serve_latency_us family missing"
assert types.get("serve_stage_us") == "histogram", "serve_stage_us family missing"
for stage in ("decode", "queue_wait", "batch_assemble", "forward", "encode", "write"):
    key = 'serve_stage_us_count{stage="%s"}' % stage
    assert key in samples, f"missing per-stage histogram: {key}"
    assert float(samples[key]) >= 1, f"stage {stage} has no observations"
assert 'serve_latency_us_count{endpoint="encode"}' in samples, \
    "missing per-endpoint latency histogram"
build = [k for k in samples if k.startswith("turl_build_info{")]
assert build and 'version="' in build[0] and 'dtype="int8"' in build[0], \
    f"bad turl_build_info: {build}"
assert any(k.startswith("serve_uptime_seconds") for k in samples), "missing uptime gauge"
assert any(k.startswith("serve_queue_depth_max") for k in samples), "missing watermark gauge"
print("prometheus ok: %d samples, %d families, stages live, %s"
      % (len(samples), len(types), build[0]))
EOF

echo "== malformed request stays typed =="
python3 - "$ADDR" <<'EOF'
import sys, urllib.request, urllib.error, json
req = urllib.request.Request(f"http://{sys.argv[1]}/v1/encode",
                             data=b"{not json", method="POST")
try:
    urllib.request.urlopen(req)
    sys.exit("malformed body was accepted")
except urllib.error.HTTPError as e:
    assert e.code == 400, f"expected 400, got {e.code}"
    body = json.load(e)
    assert body["error"]["code"] == "bad_request", body
    print("typed 400 ok:", body["error"]["code"])
EOF

echo "== SIGTERM drains and exits cleanly =="
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: daemon still running 10s after SIGTERM"
  exit 1
fi
wait "$SERVE_PID" && RC=0 || RC=$?
SERVE_PID=""
[ "$RC" -eq 0 ] || { echo "FAIL: daemon exited with $RC"; cat "$WORK/serve.log"; exit 1; }
grep -q 'shutting down' "$WORK/serve.log"

echo "== --trace-out JSONL digests under turl report =="
[ -s "$WORK/traces.jsonl" ] || { echo "FAIL: no traces written"; exit 1; }
"$TURL" report "$WORK/traces.jsonl" | tee "$WORK/report.log"
grep -q 'request traces' "$WORK/report.log"
grep -q 'queue-wait vs compute' "$WORK/report.log"
grep -q 'slowest requests' "$WORK/report.log"

echo "== tracing off: responses stay bit-identical =="
ADDR2="127.0.0.1:7642"
"$TURL" serve "${ARGS[@]}" --artifact "$WORK/model.artifact" \
  --addr "$ADDR2" --workers 2 --conns 4 --max-batch 4 --max-wait-us 2000 \
  --no-trace > "$WORK/serve2.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 600); do
  grep -q 'listening on' "$WORK/serve2.log" && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve2.log"; exit 1; }
  sleep 0.1
done
# Both daemons loaded the same artifact; --check-parity pins each one's
# responses to the same local compiled forward, so passing here proves
# traced and untraced responses are bit-identical.
"$TURL" client "${ARGS[@]}" --addr "$ADDR2" --requests 16 --concurrency 4 \
  --check-parity --artifact "$WORK/model.artifact" | tee "$WORK/client2.log"
grep -q 'bit-identical to the local forward' "$WORK/client2.log"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: --no-trace daemon exited dirty"; exit 1; }
SERVE_PID=""

echo "PASS: serve smoke — concurrent parity, sane metrics, valid Prometheus, live stage histograms, typed 4xx, clean SIGTERM drain, trace JSONL reportable, tracing on/off parity"
