#!/usr/bin/env bash
# CI gate for the serving daemon: pre-train a tiny model, export it as
# an artifact, start `turl serve` in the background, hammer it with
# concurrent parity-checked requests via `turl client`, assert the
# /metrics snapshot is sane, then SIGTERM the daemon and require a
# clean drain (no dropped in-flight requests, exit code 0).
#
# Usage: scripts/ci_serve_smoke.sh [path-to-turl-binary]
set -euo pipefail

TURL="${1:-./target/release/turl}"
WORK="$(mktemp -d)"
ADDR="127.0.0.1:7641"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

ARGS=(--entities 120 --tables 60 --seed 11)

echo "== pretrain + export =="
"$TURL" pretrain "${ARGS[@]}" --epochs 1 --out "$WORK/model.json"
"$TURL" export "${ARGS[@]}" --ckpt "$WORK/model.json" \
  --out "$WORK/model.artifact" --dtype int8

echo "== start daemon =="
"$TURL" serve "${ARGS[@]}" --artifact "$WORK/model.artifact" \
  --addr "$ADDR" --workers 2 --conns 4 --max-batch 4 --max-wait-us 2000 \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 600); do
  grep -q 'listening on' "$WORK/serve.log" && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done
grep -q 'listening on' "$WORK/serve.log" || { cat "$WORK/serve.log"; exit 1; }

echo "== concurrent parity-checked load =="
"$TURL" client "${ARGS[@]}" --addr "$ADDR" --requests 32 --concurrency 4 \
  --check-parity --artifact "$WORK/model.artifact" | tee "$WORK/client.log"
grep -q 'bit-identical to the local forward' "$WORK/client.log"

echo "== /metrics sanity =="
METRICS="$(curl -sf "http://$ADDR/metrics")" \
  || METRICS="$(python3 - "$ADDR" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(f"http://{sys.argv[1]}/metrics").read().decode())
EOF
)"
METRICS="$METRICS" python3 <<'EOF'
import json, os
m = json.loads(os.environ["METRICS"])
assert m["requests"] >= 32, "expected >=32 requests, saw %s" % m["requests"]
assert m["server_errors"] == 0, "server errors: %s" % m["server_errors"]
assert m["batches"] >= 1 and m["batch_occupancy"] >= 1.0, "no forwards recorded"
assert m["plan_cache_size"] >= 1, "no compiled plan resident"
print("metrics ok: %d requests, occupancy %.2f, hit rate %.2f"
      % (m["requests"], m["batch_occupancy"], m["cache_hit_rate"]))
EOF

echo "== malformed request stays typed =="
python3 - "$ADDR" <<'EOF'
import sys, urllib.request, urllib.error, json
req = urllib.request.Request(f"http://{sys.argv[1]}/v1/encode",
                             data=b"{not json", method="POST")
try:
    urllib.request.urlopen(req)
    sys.exit("malformed body was accepted")
except urllib.error.HTTPError as e:
    assert e.code == 400, f"expected 400, got {e.code}"
    body = json.load(e)
    assert body["error"]["code"] == "bad_request", body
    print("typed 400 ok:", body["error"]["code"])
EOF

echo "== SIGTERM drains and exits cleanly =="
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: daemon still running 10s after SIGTERM"
  exit 1
fi
wait "$SERVE_PID" && RC=0 || RC=$?
SERVE_PID=""
[ "$RC" -eq 0 ] || { echo "FAIL: daemon exited with $RC"; cat "$WORK/serve.log"; exit 1; }
grep -q 'shutting down' "$WORK/serve.log"
echo "PASS: serve smoke — concurrent parity, sane metrics, typed 4xx, clean SIGTERM drain"
